// Package obs is the runtime observability layer for long-running
// ORTOA deployments: a metrics registry of lock-free counters, gauges,
// and log-bucketed latency histograms, exported in the Prometheus text
// exposition format, plus a slow-request trace log and an HTTP admin
// endpoint (admin.go).
//
// The paper's evaluation (§6, Figs 2–5) is entirely about where access
// latency goes — proxy compute vs. network round trip vs. server work —
// so the protocol hot paths record one histogram sample per stage (see
// DESIGN.md §8 for the metric ↔ paper-stage map). Metrics are opt-in:
// every instrumented component accepts a nil *Registry, and all metric
// methods are nil-receiver no-ops, so the disabled path costs one
// branch and allocates nothing.
//
// The package is stdlib-only and safe for concurrent use. Hot-path
// operations (Counter.Add, Gauge.Set, Histogram.Observe) take no locks:
// they are single atomic RMW operations on pre-allocated cells, so
// many goroutines can hammer one metric without contention beyond
// cache-line traffic.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ortoa/internal/obs/trace"
)

// A Counter is a monotonically increasing atomic counter. The zero
// value is ready to use; a nil Counter discards all updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n and returns the new value (0 for a
// nil receiver).
func (c *Counter) Add(n int64) int64 {
	if c == nil {
		return 0
	}
	return c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is an atomic instantaneous value. The zero value is ready to
// use; a nil Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (negative to decrease) and returns the
// new value (0 for a nil receiver).
func (g *Gauge) Add(n int64) int64 {
	if g == nil {
		return 0
	}
	return g.v.Add(n)
}

// Inc increments the gauge by one and returns the new value.
func (g *Gauge) Inc() int64 { return g.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of log2 duration buckets. Bucket i counts
// samples whose nanosecond duration has bit-length i, i.e. durations
// in (2^(i-1), 2^i − 1] ns; bucket 0 counts zero/negative samples.
// 2^46 ns ≈ 19.5 h, far beyond any per-request latency.
const histBuckets = 47

// A Histogram accumulates a latency distribution in logarithmic
// buckets. Observe is a fixed sequence of atomic adds — no locks, no
// allocation — so it can sit on protocol hot paths. The exact sum and
// count are kept alongside the buckets, so Mean is exact while
// quantiles are bucket-interpolated (≤2× relative error, plenty for
// the per-stage breakdowns of Fig 3c). A nil Histogram discards
// samples.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Uint64
	// exemplars holds one recent trace id per bucket (0 = none),
	// written by ObserveExemplar so a slow bucket on /metrics links
	// straight to the /trace span tree that landed in it.
	exemplars [histBuckets]atomic.Uint64
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	idx := bits.Len64(uint64(ns))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// ObserveExemplar records one sample like Observe and, when traceID is
// nonzero, attaches it as the bucket's exemplar — the most recent
// trace to land in that latency bucket. Slow-bucket exemplars are how
// an operator goes from "p99 regressed" to one concrete span tree.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID uint64) {
	if h == nil {
		return
	}
	h.Observe(d)
	if traceID == 0 {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	idx := bits.Len64(uint64(ns))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.exemplars[idx].Store(traceID)
}

// Since records the elapsed time from start. It is shorthand for
// Observe(time.Since(start)); a nil receiver skips the clock read.
func (h *Histogram) Since(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start))
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact total of all observed samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the exact mean sample, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.Sum()) / n)
}

// bucketUpper returns the inclusive upper bound of bucket i in
// nanoseconds.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// Quantile returns the bucket-interpolated p-quantile (p in [0, 1]),
// or 0 with no samples. Within the target bucket it interpolates
// linearly between the bucket bounds.
func (h *Histogram) Quantile(p float64) time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(n)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		c := float64(h.buckets[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(bucketUpper(i-1)) + 1
			}
			hi := float64(bucketUpper(i))
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / c
			}
			return time.Duration(lo + frac*(hi-lo))
		}
		cum += c
	}
	return time.Duration(bucketUpper(histBuckets - 1))
}

// A Stopwatch times the consecutive stages of one request. Created
// disabled it costs one branch per Lap and never reads the clock, so
// uninstrumented hot paths stay free of timing overhead.
type Stopwatch struct {
	t  time.Time
	on bool
}

// StartWatch starts a stopwatch; pass enabled=false to get an inert
// one.
func StartWatch(enabled bool) Stopwatch {
	if !enabled {
		return Stopwatch{}
	}
	return Stopwatch{t: time.Now(), on: true}
}

// Lap records the time since the previous lap (or start) into h and
// restarts the lap clock, returning the lap duration. Disabled
// stopwatches return 0 without touching the clock or h.
func (s *Stopwatch) Lap(h *Histogram) time.Duration {
	if !s.on {
		return 0
	}
	now := time.Now()
	d := now.Sub(s.t)
	s.t = now
	h.Observe(d)
	return d
}

// Enabled reports whether the stopwatch is live.
func (s *Stopwatch) Enabled() bool { return s.on }

// metricKind drives Prometheus TYPE lines.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered entry: exactly one of the value fields is
// set. fn-backed entries are evaluated at scrape time (for values a
// component already tracks, like kvstore record counts).
type metric struct {
	name string // full name including any {label="..."} suffix
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() int64
}

// A Registry names and exports a set of metrics. Metrics are created
// with get-or-create semantics, so components instrumented against the
// same registry share series (e.g. every shard's proxy feeds one stage
// histogram). A nil *Registry is a valid "observability off" registry:
// every constructor returns nil, and nil metrics discard updates.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	slowMu  sync.Mutex
	slow    map[string]*SlowLog

	healthMu sync.Mutex
	health   map[string]func() error

	hookMu sync.Mutex
	hooks  []func()

	tracerMu sync.Mutex
	tracers  map[string]*trace.Tracer

	runtimeOnce sync.Once // RegisterRuntimeMetrics idempotence
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric), slow: make(map[string]*SlowLog)}
}

// register returns the existing metric for name or installs m.
func (r *Registry) register(name, help string, kind metricKind, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	m.name, m.help, m.kind = name, help, kind
	r.metrics[name] = m
	return m
}

// Counter returns the counter registered under name, creating it if
// needed. name may carry a Prometheus label suffix, e.g.
// `frames_total{dir="in"}`. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, func() *metric {
		return &metric{counter: &Counter{}}
	}).counter
}

// Gauge returns the gauge registered under name, creating it if
// needed. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, func() *metric {
		return &metric{gauge: &Gauge{}}
	}).gauge
}

// Histogram returns the histogram registered under name, creating it
// if needed. Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindHistogram, func() *metric {
		return &metric{hist: &Histogram{}}
	}).hist
}

// Value returns the current value of the named counter or gauge,
// func-backed or handle-backed, and 0 for unregistered names or
// histograms. Experiments and tests use it to assert on metrics that
// components export only through scrape-time callbacks. Returns 0 on a
// nil registry.
func (r *Registry) Value(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	m, ok := r.metrics[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	switch {
	case m.fn != nil:
		return m.fn()
	case m.counter != nil:
		return m.counter.Value()
	case m.gauge != nil:
		return m.gauge.Value()
	}
	return 0
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — for totals a component already tracks in its own
// atomics (e.g. transport.Client.Stats). Registering the same name
// again sums the callbacks, so per-shard components naturally
// aggregate into one series. No-op on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.registerFunc(name, help, kindCounter, fn)
}

// GaugeFunc registers a gauge read from fn at scrape time; same
// name-collision summing as CounterFunc. No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.registerFunc(name, help, kindGauge, fn)
}

// Health registers a named liveness check, polled by the /healthz
// admin endpoint at request time: a nil return means healthy, an
// error marks the process unhealthy (503) with the error text in the
// body. Re-registering a name replaces the check. No-op on a nil
// registry.
func (r *Registry) Health(name string, check func() error) {
	if r == nil {
		return
	}
	r.healthMu.Lock()
	defer r.healthMu.Unlock()
	if r.health == nil {
		r.health = make(map[string]func() error)
	}
	r.health[name] = check
}

// A HealthResult is one check's outcome at poll time.
type HealthResult struct {
	Name string
	Err  error // nil when healthy
}

// CheckHealth polls every registered check and returns the results
// sorted by name. A nil registry (or none registered) reports healthy.
func (r *Registry) CheckHealth() []HealthResult {
	if r == nil {
		return nil
	}
	r.healthMu.Lock()
	names := make([]string, 0, len(r.health))
	checks := make([]func() error, 0, len(r.health))
	for name := range r.health {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		checks = append(checks, r.health[name])
	}
	r.healthMu.Unlock()
	out := make([]HealthResult, len(names))
	for i, name := range names {
		out[i] = HealthResult{Name: name, Err: checks[i]()}
	}
	return out
}

func (r *Registry) registerFunc(name, help string, kind metricKind, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.fn != nil {
			prev := m.fn
			m.fn = func() int64 { return prev() + fn() }
		}
		return
	}
	r.metrics[name] = &metric{name: name, help: help, kind: kind, fn: fn}
}

// OnScrape registers fn to run at the start of every WritePrometheus
// call, before the metric snapshot is taken — for metrics that are
// cheaper to refresh per scrape than per event (runtime.ReadMemStats).
// No-op on a nil registry.
func (r *Registry) OnScrape(fn func()) {
	if r == nil {
		return
	}
	r.hookMu.Lock()
	r.hooks = append(r.hooks, fn)
	r.hookMu.Unlock()
}

func (r *Registry) runScrapeHooks() {
	r.hookMu.Lock()
	hooks := r.hooks
	r.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// Tracer returns the span tracer registered under the given process
// name, creating it with the given ring capacity if needed. Components
// instrumented against the same registry share the tracer, so every
// shard's proxy feeds one /trace buffer. Returns nil on a nil
// registry; a nil tracer starts nil (no-op) spans.
func (r *Registry) Tracer(process string, capacity int) *trace.Tracer {
	if r == nil {
		return nil
	}
	r.tracerMu.Lock()
	defer r.tracerMu.Unlock()
	if r.tracers == nil {
		r.tracers = make(map[string]*trace.Tracer)
	}
	if t, ok := r.tracers[process]; ok {
		return t
	}
	t := trace.NewTracer(process, capacity)
	r.tracers[process] = t
	return t
}

// TraceRecords returns every retained span across all of the
// registry's tracers, sorted by start time — the /trace endpoint's
// data source.
func (r *Registry) TraceRecords() []trace.SpanRecord {
	if r == nil {
		return nil
	}
	r.tracerMu.Lock()
	tracers := make([]*trace.Tracer, 0, len(r.tracers))
	for _, t := range r.tracers {
		tracers = append(tracers, t)
	}
	r.tracerMu.Unlock()
	var out []trace.SpanRecord
	for _, t := range tracers {
		out = append(out, t.Snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// SlowLog returns the slow-request trace log registered under name,
// creating it with the given capacity if needed. Returns nil on a nil
// registry.
func (r *Registry) SlowLog(name string, capacity int) *SlowLog {
	if r == nil {
		return nil
	}
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	if l, ok := r.slow[name]; ok {
		return l
	}
	l := newSlowLog(name, capacity)
	r.slow[name] = l
	return l
}

// slowLogs returns all registered slow logs sorted by name.
func (r *Registry) slowLogs() []*SlowLog {
	if r == nil {
		return nil
	}
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	out := make([]*SlowLog, 0, len(r.slow))
	for _, l := range r.slow {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// baseName strips a {label="..."} suffix, returning the metric family
// name Prometheus TYPE/HELP lines use.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelInsert splits name into the pieces needed to splice extra
// labels (histogram le) into an already-labelled name:
// `x{a="b"}` → (`x{a="b",`, `}`); `x` → (`x{`, `}`).
func labelInsert(name string) (prefix, suffix string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return strings.TrimSuffix(name, "}") + ",", "}"
	}
	return name + "{", "}"
}

func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (text/plain; version 0.0.4). Metric families are
// sorted by name; HELP/TYPE lines are emitted once per family.
// Durations are exported in seconds, per Prometheus convention.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Scrape hooks refresh pull-model metrics (runtime stats) and may
	// register series, so they run before the snapshot below.
	r.runScrapeHooks()
	// Snapshot metric structs under the lock: registerFunc may still be
	// chaining fn callbacks while a scrape is in flight.
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		cp := *m
		ms = append(ms, &cp)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	seenFamily := ""
	for _, m := range ms {
		fam := baseName(m.name)
		if fam != seenFamily {
			seenFamily = fam
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, strings.ReplaceAll(m.help, "\n", " ")); err != nil {
					return err
				}
			}
			kind := "counter"
			switch m.kind {
			case kindGauge:
				kind = "gauge"
			case kindHistogram:
				kind = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, kind); err != nil {
				return err
			}
		}
		var err error
		switch {
		case m.fn != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.fn())
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Value())
		case m.hist != nil:
			err = writeHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits the cumulative _bucket/_sum/_count series for
// one histogram, with le bounds in seconds. Empty buckets are elided
// (the series stays cumulative, so this loses nothing).
func writeHistogram(w io.Writer, m *metric) error {
	h := m.hist
	base := baseName(m.name)
	labels := strings.TrimPrefix(m.name, base) // "" or `{k="v"}`
	pre, suf := labelInsert(m.name)
	bucketLabels := pre[len(base):] // `{` or `{k="v",`
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		le := float64(bucketUpper(i)) / float64(time.Second)
		// OpenMetrics-style exemplar: link the bucket to a recent trace
		// id when one was attached. Untraced histograms render exactly
		// as before.
		exemplar := ""
		if ex := h.exemplars[i].Load(); ex != 0 {
			exemplar = fmt.Sprintf(" # {trace_id=\"%016x\"} %s", ex, fmtFloat(le))
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%sle=%q%s %d%s\n", base, bucketLabels, fmtFloat(le), suf, cum, exemplar); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"%s %d\n", base, bucketLabels, suf, h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, fmtFloat(h.Sum().Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count())
	return err
}
