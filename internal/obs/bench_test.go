package obs

import (
	"testing"
	"time"
)

// BenchmarkHistogramObserve measures the instrumented hot path: three
// atomic adds, ~10ns on modern hardware — invisible next to a ~100µs
// LBL access.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

// BenchmarkHistogramObserveParallel measures contention: concurrent
// observers share cache lines but take no locks.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(time.Microsecond)
		}
	})
}

// BenchmarkDisabledStopwatch measures the uninstrumented path a
// protocol pays when metrics are off: one branch, no clock read.
func BenchmarkDisabledStopwatch(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw := StartWatch(false)
		sw.Lap(h)
		sw.Lap(h)
		sw.Lap(h)
		sw.Lap(h)
	}
}

// BenchmarkEnabledStopwatch measures the instrumented stage-timing
// path: one clock read plus one Observe per lap.
func BenchmarkEnabledStopwatch(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw := StartWatch(true)
		sw.Lap(&h)
		sw.Lap(&h)
		sw.Lap(&h)
		sw.Lap(&h)
	}
}
