package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// AdminMux returns the operator endpoint for a deployment:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       health probe: 200 "ok", or 503 listing failed checks
//	/slowlog       slowest retained requests, stage by stage
//	/trace         retained spans as JSON (?trace=<hex id>&limit=&offset=)
//	/debug/pprof/  the standard Go profiling handlers
//
// ortoa-proxy and ortoa-server serve it on -metrics-addr; tests and
// embedded deployments can mount it on any server. Mounting also
// registers the Go runtime metrics (runtime.go) on reg.
func AdminMux(reg *Registry) *http.ServeMux {
	RegisterRuntimeMetrics(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client disconnects only
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		results := reg.CheckHealth()
		failed := false
		for _, res := range results {
			if res.Err != nil {
				failed = true
			}
		}
		if failed {
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, res := range results {
				if res.Err != nil {
					fmt.Fprintf(w, "%s: %v\n", res.Name, res.Err)
				}
			}
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/slowlog", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, l := range reg.slowLogs() {
			fmt.Fprintf(w, "== %s (%d retained) ==\n", l.Name(), l.Len())
			l.WriteText(w) //nolint:errcheck // client disconnects only
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		writeTraceJSON(w, reg, r.URL.Query().Get("trace"),
			r.URL.Query().Get("limit"), r.URL.Query().Get("offset"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// traceSpanJSON is one span in the /trace document. Ids render as
// zero-padded hex so they can be pasted between daemons' /trace
// endpoints and matched against histogram exemplars.
type traceSpanJSON struct {
	TraceID    string `json:"trace_id"`
	SpanID     string `json:"span_id"`
	ParentID   string `json:"parent_id,omitempty"`
	Name       string `json:"name"`
	Process    string `json:"process"`
	Start      string `json:"start"`
	DurationNS int64  `json:"duration_ns"`
}

type traceDocJSON struct {
	Total  int             `json:"total"`
	Offset int             `json:"offset"`
	Limit  int             `json:"limit"`
	Spans  []traceSpanJSON `json:"spans"`
}

// writeTraceJSON renders the registry's retained spans, optionally
// filtered to one trace id (hex, with or without zero padding) and
// paginated by limit/offset over the start-time-sorted span list.
func writeTraceJSON(w http.ResponseWriter, reg *Registry, traceFilter, limitStr, offsetStr string) {
	var want uint64
	if traceFilter != "" {
		id, err := strconv.ParseUint(traceFilter, 16, 64)
		if err != nil || id == 0 {
			http.Error(w, fmt.Sprintf("bad trace id %q: want hex", traceFilter), http.StatusBadRequest)
			return
		}
		want = id
	}
	limit := 256
	if limitStr != "" {
		n, err := strconv.Atoi(limitStr)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad limit %q", limitStr), http.StatusBadRequest)
			return
		}
		limit = n
	}
	offset := 0
	if offsetStr != "" {
		n, err := strconv.Atoi(offsetStr)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad offset %q", offsetStr), http.StatusBadRequest)
			return
		}
		offset = n
	}

	records := reg.TraceRecords()
	if want != 0 {
		kept := records[:0]
		for _, rec := range records {
			if rec.TraceID == want {
				kept = append(kept, rec)
			}
		}
		records = kept
	}
	doc := traceDocJSON{Total: len(records), Offset: offset, Limit: limit, Spans: []traceSpanJSON{}}
	if offset < len(records) {
		page := records[offset:]
		if len(page) > limit {
			page = page[:limit]
		}
		for _, rec := range page {
			s := traceSpanJSON{
				TraceID:    fmt.Sprintf("%016x", rec.TraceID),
				SpanID:     fmt.Sprintf("%016x", rec.SpanID),
				Name:       rec.Name,
				Process:    rec.Process,
				Start:      rec.Start.Format(time.RFC3339Nano),
				DurationNS: int64(rec.Duration),
			}
			if rec.ParentID != 0 {
				s.ParentID = fmt.Sprintf("%016x", rec.ParentID)
			}
			doc.Spans = append(doc.Spans, s)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // client disconnects only
}

// ServeAdmin listens on addr and serves AdminMux(reg) until the
// returned server is Closed. It returns once the listener is bound
// (the server's Addr field carries the resolved address), so callers
// know scrapes will succeed before taking traffic.
func ServeAdmin(addr string, reg *Registry) (*http.Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Addr:              l.Addr().String(),
		Handler:           AdminMux(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(l) //nolint:errcheck // returns ErrServerClosed on Close
	return srv, nil
}
