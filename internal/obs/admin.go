package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminMux returns the operator endpoint for a deployment:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       health probe: 200 "ok", or 503 listing failed checks
//	/slowlog       slowest retained requests, stage by stage
//	/debug/pprof/  the standard Go profiling handlers
//
// ortoa-proxy and ortoa-server serve it on -metrics-addr; tests and
// embedded deployments can mount it on any server.
func AdminMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client disconnects only
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		results := reg.CheckHealth()
		failed := false
		for _, res := range results {
			if res.Err != nil {
				failed = true
			}
		}
		if failed {
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, res := range results {
				if res.Err != nil {
					fmt.Fprintf(w, "%s: %v\n", res.Name, res.Err)
				}
			}
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/slowlog", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, l := range reg.slowLogs() {
			fmt.Fprintf(w, "== %s (%d retained) ==\n", l.Name(), l.Len())
			l.WriteText(w) //nolint:errcheck // client disconnects only
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeAdmin listens on addr and serves AdminMux(reg) until the
// returned server is Closed. It returns once the listener is bound
// (the server's Addr field carries the resolved address), so callers
// know scrapes will succeed before taking traffic.
func ServeAdmin(addr string, reg *Registry) (*http.Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Addr:              l.Addr().String(),
		Handler:           AdminMux(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(l) //nolint:errcheck // returns ErrServerClosed on Close
	return srv, nil
}
