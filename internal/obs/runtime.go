package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntimeMetrics exports the Go runtime's vitals on reg:
//
//	go_goroutines            current goroutine count
//	go_gomaxprocs            scheduler parallelism limit
//	go_cpus_available        runtime.NumCPU
//	go_heap_alloc_bytes      live heap bytes
//	go_heap_sys_bytes        heap bytes obtained from the OS
//	go_gc_cycles_total       completed GC cycles
//	go_gc_pause_seconds      histogram of recent stop-the-world pauses
//
// The point is honesty in benchmark artifacts (ROADMAP): a BENCH_*.json
// or /metrics scrape now carries the CPU budget it actually ran under,
// so 1-CPU numbers can no longer masquerade as multicore results.
//
// Memory and GC stats refresh once per scrape via an OnScrape hook —
// one runtime.ReadMemStats per /metrics request, nothing on any hot
// path. Safe to call more than once; only the first call registers.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	reg.runtimeOnce.Do(func() { registerRuntimeMetrics(reg) })
}

func registerRuntimeMetrics(reg *Registry) {
	reg.GaugeFunc("go_goroutines", "currently live goroutines",
		func() int64 { return int64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_gomaxprocs", "GOMAXPROCS: max simultaneously executing OS threads",
		func() int64 { return int64(runtime.GOMAXPROCS(0)) })
	reg.GaugeFunc("go_cpus_available", "logical CPUs visible to the process",
		func() int64 { return int64(runtime.NumCPU()) })

	heapAlloc := reg.Gauge("go_heap_alloc_bytes", "bytes of live heap objects")
	heapSys := reg.Gauge("go_heap_sys_bytes", "heap bytes obtained from the OS")
	gcCycles := reg.Counter("go_gc_cycles_total", "completed GC cycles")
	gcPause := reg.Histogram("go_gc_pause_seconds", "recent stop-the-world GC pause durations")

	// The refresh drains MemStats.PauseNs — a 256-entry ring indexed by
	// NumGC — into the pause histogram, tracking the last cycle seen so
	// each pause is observed exactly once however often /metrics is hit.
	var mu sync.Mutex
	var lastNumGC uint32
	reg.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapSys.Set(int64(ms.HeapSys))

		mu.Lock()
		defer mu.Unlock()
		if ms.NumGC > lastNumGC {
			gcCycles.Add(int64(ms.NumGC - lastNumGC))
			first := lastNumGC
			if ms.NumGC-first > uint32(len(ms.PauseNs)) {
				first = ms.NumGC - uint32(len(ms.PauseNs))
			}
			for n := first; n < ms.NumGC; n++ {
				gcPause.Observe(time.Duration(ms.PauseNs[n%uint32(len(ms.PauseNs))]))
			}
			lastNumGC = ms.NumGC
		}
	})
}
