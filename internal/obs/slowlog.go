package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// A Stage is one timed segment of a traced request.
type Stage struct {
	Name string
	D    time.Duration
}

// A Trace is one retained per-request record: the request's total
// latency and its per-stage breakdown. Label identifies the request
// non-sensitively (the proxy uses a truncated key digest, never the
// plaintext key).
type Trace struct {
	At     time.Time
	Label  string
	Total  time.Duration
	Stages []Stage
}

// A SlowLog retains the slowest N requests seen, so the tail of the
// latency distribution — the P99 accesses that histograms summarize
// away — can be inspected stage by stage. Admission is a single atomic
// threshold load on the hot path; only requests slower than the
// current N-th slowest take the lock. A nil SlowLog rejects
// everything.
type SlowLog struct {
	name string
	cap  int

	// floor is the smallest retained total once the log is full; 0
	// until then. Requests at or below it are rejected lock-free.
	floor atomic.Int64

	mu      sync.Mutex
	entries []Trace // sorted descending by Total
}

func newSlowLog(name string, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = 32
	}
	return &SlowLog{name: name, cap: capacity}
}

// Worthy reports whether a request with the given total would be
// retained — callers check it before materializing a Trace, keeping
// the common (fast-request) path allocation-free.
func (l *SlowLog) Worthy(total time.Duration) bool {
	return l != nil && int64(total) > l.floor.Load()
}

// Record retains the trace if it is among the slowest seen. Callers
// should gate on Worthy first; Record re-checks under the lock.
func (l *SlowLog) Record(t Trace) {
	if l == nil || int64(t.Total) <= l.floor.Load() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].Total < t.Total })
	if i >= l.cap {
		return // raced below the floor
	}
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, Trace{})
	}
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = t
	if len(l.entries) == l.cap {
		l.floor.Store(int64(l.entries[len(l.entries)-1].Total))
	}
}

// Entries returns the retained traces, slowest first.
func (l *SlowLog) Entries() []Trace {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Trace(nil), l.entries...)
}

// Len returns the number of retained traces.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Name returns the log's registered name.
func (l *SlowLog) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// WriteText renders the retained traces human-readably, one request
// per line with its stage breakdown.
func (l *SlowLog) WriteText(w io.Writer) error {
	if l == nil {
		return nil
	}
	for _, t := range l.Entries() {
		if _, err := fmt.Fprintf(w, "%s total=%v label=%s", t.At.Format(time.RFC3339Nano), t.Total, t.Label); err != nil {
			return err
		}
		for _, s := range t.Stages {
			if _, err := fmt.Fprintf(w, " %s=%v", s.Name, s.D); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
