package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ortoa/internal/obs/trace"
)

func TestMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_total", "completed operations").Add(3)
	reg.Gauge(`ortoa_window{proc="proxy"}`, "open window size").Set(7)
	h := reg.Histogram("e2e_seconds", "end-to-end latency")
	h.Observe(time.Millisecond)
	h.ObserveExemplar(90*time.Millisecond, 0xdeadbeefcafe)
	mux := AdminMux(reg)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body := rec.Body.String()
	for _, tc := range []struct{ what, want string }{
		{"counter sample", "ops_total 3"},
		{"counter help", "# HELP ops_total completed operations"},
		{"counter type", "# TYPE ops_total counter"},
		{"labelled gauge", `ortoa_window{proc="proxy"} 7`},
		{"histogram count", "e2e_seconds_count 2"},
		{"histogram +Inf bucket", `e2e_seconds_bucket{le="+Inf"} 2`},
		{"slow-bucket exemplar", `# {trace_id="0000deadbeefcafe"}`},
		// AdminMux mounts the Go runtime metrics (satellite: runtime
		// observability rides the same registry as protocol metrics).
		{"goroutine gauge", "go_goroutines "},
		{"gomaxprocs gauge", "go_gomaxprocs "},
		{"cpu gauge", "go_cpus_available "},
		{"heap gauge", "go_heap_alloc_bytes "},
		{"gc pause histogram", "go_gc_pause_seconds_count"},
	} {
		if !strings.Contains(body, tc.want) {
			t.Errorf("/metrics missing %s %q", tc.what, tc.want)
		}
	}
}

func TestHealthzListsEveryFailedCheck(t *testing.T) {
	reg := NewRegistry()
	reg.Health("wal", func() error { return nil })
	mux := AdminMux(reg)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthy: got %d %q, want 200 ok", rec.Code, rec.Body.String())
	}

	reg.Health("shape_proxy", func() error { return errAlwaysShape })
	reg.Health("disk", func() error { return errAlwaysDisk })
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("failing checks: status %d, want 503", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"shape_proxy: 2 violations", "disk: out of space"} {
		if !strings.Contains(body, want) {
			t.Errorf("/healthz body %q missing %q", body, want)
		}
	}
	if strings.Contains(body, "wal") {
		t.Errorf("/healthz body %q must list only failed checks", body)
	}
}

var (
	errAlwaysShape = errString("2 violations")
	errAlwaysDisk  = errString("out of space")
)

type errString string

func (e errString) Error() string { return string(e) }

func TestTraceEndpointTable(t *testing.T) {
	reg := NewRegistry()
	tr := reg.Tracer("proxy", 64)
	roots := make([]*trace.Span, 3)
	for i := range roots {
		roots[i] = tr.StartRoot("lbl_access")
		roots[i].Child("rpc").End()
		roots[i].End()
	}
	// 6 finished spans total, 2 per trace.
	wantID := roots[1].TraceID()
	mux := AdminMux(reg)

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	decode := func(body string) traceDocJSON {
		var doc traceDocJSON
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("bad /trace JSON: %v\n%s", err, body)
		}
		return doc
	}

	for _, tc := range []struct {
		name       string
		path       string
		wantStatus int
		wantTotal  int
		wantSpans  int
	}{
		{"all spans", "/trace", 200, 6, 6},
		{"limit pages", "/trace?limit=4", 200, 6, 4},
		{"offset into tail", "/trace?limit=4&offset=4", 200, 6, 2},
		{"offset past end", "/trace?offset=100", 200, 6, 0},
		{"filter one trace", "/trace?trace=" + hex16(wantID), 200, 2, 2},
		{"filter accepts unpadded hex", "/trace?trace=" + strings.TrimLeft(hex16(wantID), "0"), 200, 2, 2},
		{"filter unknown trace", "/trace?trace=1", 200, 0, 0},
		{"bad trace id", "/trace?trace=zz", 400, 0, 0},
		{"bad limit", "/trace?limit=0", 400, 0, 0},
		{"bad offset", "/trace?offset=-1", 400, 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, body := get(tc.path)
			if status != tc.wantStatus {
				t.Fatalf("GET %s status %d, want %d (%s)", tc.path, status, tc.wantStatus, body)
			}
			if status != 200 {
				return
			}
			doc := decode(body)
			if doc.Total != tc.wantTotal || len(doc.Spans) != tc.wantSpans {
				t.Fatalf("GET %s: total=%d spans=%d, want total=%d spans=%d",
					tc.path, doc.Total, len(doc.Spans), tc.wantTotal, tc.wantSpans)
			}
			for _, sp := range doc.Spans {
				if sp.Process != "proxy" || sp.TraceID == "" || sp.SpanID == "" {
					t.Fatalf("span missing fields: %+v", sp)
				}
				if sp.Name == "rpc" && sp.ParentID == "" {
					t.Fatal("child span lost its parent id in JSON")
				}
			}
		})
	}
}

func hex16(id uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// TestAdminConcurrentScrape hammers every read endpoint while spans,
// counters, and shape observations are being recorded — the admin mux
// must be safe to scrape mid-flight (run under -race).
func TestAdminConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	tr := reg.Tracer("proxy", 128)
	aud := NewShapeAuditor(reg, "proxy")
	ops := reg.Counter("ops_total", "")
	lat := reg.Histogram("e2e_seconds", "")
	mux := AdminMux(reg)

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 300; i++ {
				sp, _ := tr.Start(context.Background(), "lbl_access")
				sp.Child("rpc").End()
				sp.End()
				ops.Inc()
				lat.ObserveExemplar(time.Duration(i)*time.Microsecond, sp.TraceID())
				aud.Observe("out", 0x02, 0, true, 512)
			}
		}()
	}
	for _, path := range []string{"/metrics", "/healthz", "/trace", "/trace?limit=5"} {
		readers.Add(1)
		go func(path string) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					rec := httptest.NewRecorder()
					mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
					if rec.Code != 200 {
						t.Errorf("GET %s: status %d", path, rec.Code)
						return
					}
				}
			}
		}(path)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := aud.Violations(); got != 0 {
		t.Fatalf("uniform frames produced %d violations", got)
	}
}
