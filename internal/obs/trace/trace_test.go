package trace

import (
	"context"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if sp := tr.StartRoot("x"); sp != nil {
		t.Fatal("nil tracer must start nil spans")
	}
	if sp := tr.StartRemote(SpanContext{TraceID: 1, SpanID: 2}, "x"); sp != nil {
		t.Fatal("nil tracer must start nil remote spans")
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v, want nil", got)
	}
	if tr.Process() != "" {
		t.Fatal("nil tracer process must be empty")
	}

	var sp *Span
	sp.End() // must not panic
	if c := sp.Child("y"); c != nil {
		t.Fatal("nil span must produce nil children")
	}
	if sc := sp.Context(); sc.Valid() {
		t.Fatal("nil span context must be invalid")
	}
	if sp.TraceID() != 0 {
		t.Fatal("nil span trace id must be 0")
	}

	ctx := ContextWith(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("ContextWith(nil span) must not install a span")
	}
	if StartChild(ctx, "z") != nil {
		t.Fatal("StartChild without an active span must be nil")
	}

	s2, ctx2 := tr.Start(context.Background(), "w")
	if s2 != nil || ctx2 != context.Background() {
		t.Fatal("nil tracer Start must return (nil, ctx)")
	}
}

func TestParentLinkage(t *testing.T) {
	tr := NewTracer("proxy", 64)
	root := tr.StartRoot("root")
	child := root.Child("child")
	grand := child.Child("grand")
	grand.End()
	child.End()
	root.End()

	recs := tr.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
		if r.TraceID != root.TraceID() {
			t.Fatalf("span %s trace id %x, want %x", r.Name, r.TraceID, root.TraceID())
		}
		if r.Process != "proxy" {
			t.Fatalf("span %s process %q, want proxy", r.Name, r.Process)
		}
	}
	if byName["root"].ParentID != 0 {
		t.Fatal("root must have no parent")
	}
	if byName["child"].ParentID != byName["root"].SpanID {
		t.Fatal("child must parent on root")
	}
	if byName["grand"].ParentID != byName["child"].SpanID {
		t.Fatal("grand must parent on child")
	}
}

func TestStartRemoteJoinsTrace(t *testing.T) {
	proxy := NewTracer("proxy", 16)
	server := NewTracer("server", 16)
	ps := proxy.StartRoot("rpc")
	ss := server.StartRemote(ps.Context(), "server_handle")
	if ss.TraceID() != ps.TraceID() {
		t.Fatalf("remote span trace id %x, want %x", ss.TraceID(), ps.TraceID())
	}
	ss.End()
	recs := server.Snapshot()
	if len(recs) != 1 || recs[0].ParentID != ps.Context().SpanID {
		t.Fatalf("remote span must parent on the wire context's span id; got %+v", recs)
	}
	if sp := server.StartRemote(SpanContext{}, "x"); sp != nil {
		t.Fatal("invalid wire context must start a nil span")
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTracer("p", 16)
	sp := tr.StartRoot("once")
	sp.End()
	sp.End()
	sp.End()
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("triple End recorded %d spans, want 1", got)
	}
}

func TestRingWraparound(t *testing.T) {
	tr := NewTracer("p", 16) // capacity rounds to exactly 16
	for i := 0; i < 100; i++ {
		tr.StartRoot("s").End()
	}
	if got := len(tr.Snapshot()); got != 16 {
		t.Fatalf("after 100 spans the 16-slot ring holds %d, want 16", got)
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 16}, {1, 16}, {17, 32}, {64, 64}, {100, 128}} {
		tr := NewTracer("p", tc.in)
		if got := len(tr.slots); got != tc.want {
			t.Fatalf("NewTracer(%d) capacity %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestContextThreading(t *testing.T) {
	tr := NewTracer("p", 16)
	root, ctx := tr.Start(context.Background(), "root")
	if root == nil || FromContext(ctx) != root {
		t.Fatal("Start must install the new span in ctx")
	}
	child := StartChild(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Fatal("StartChild must stay in the parent's trace")
	}
	child.End()
	recs := tr.Snapshot()
	if len(recs) != 1 || recs[0].ParentID != root.Context().SpanID {
		t.Fatalf("ctx child must parent on the ctx span; got %+v", recs)
	}

	// Start with an active ctx span continues that trace (child, not a
	// fresh root), even on a different tracer.
	other := NewTracer("q", 16)
	cont, _ := other.Start(ctx, "cont")
	if cont.TraceID() != root.TraceID() {
		t.Fatal("Start under an active span must continue its trace")
	}
}

func TestConcurrentEndAndSnapshot(t *testing.T) {
	tr := NewTracer("p", 128)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				sp := tr.StartRoot("s")
				sp.Child("c").End()
				sp.End()
			}
		}()
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, r := range tr.Snapshot() {
					if r.SpanID == 0 {
						t.Error("snapshot returned a zero span id")
						return
					}
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
}
