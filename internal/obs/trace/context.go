package trace

import "context"

// ctxKey keys the active span in a context.Context.
type ctxKey struct{}

// ContextWith returns ctx carrying s as the active span. A nil span
// returns ctx unchanged, so untraced paths don't grow context chains.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span in ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartChild begins a child of the active span in ctx, using that
// span's own tracer — deep callees need no tracer plumbing; they
// inherit whichever tracer started the request. Returns nil (a no-op
// span) when ctx carries no span.
func StartChild(ctx context.Context, name string) *Span {
	return FromContext(ctx).Child(name)
}

// Start begins a span in t: a child of the active span in ctx when one
// is present, a new root otherwise. The second return is ctx carrying
// the new span. A nil tracer returns (nil, ctx).
func (t *Tracer) Start(ctx context.Context, name string) (*Span, context.Context) {
	if t == nil {
		return nil, ctx
	}
	var s *Span
	if p := FromContext(ctx); p != nil {
		s = t.start(SpanContext{TraceID: p.sc.TraceID, SpanID: newID()}, p.sc.SpanID, name)
	} else {
		s = t.StartRoot(name)
	}
	return s, ContextWith(ctx, s)
}
