// Package trace is a Dapper-style distributed tracer for ORTOA
// deployments: spans carry a trace id, a parent span id, a stage name,
// and monotonic timestamps, and finished spans land in a lock-free
// per-process ring buffer exposed as JSON by the /trace admin endpoint.
//
// Span context crosses process boundaries inside the transport frame
// header as a fixed-size field (wire.TraceRefLen bytes) that is present
// in every frame — zeroed when tracing is off — so enabling tracing
// never changes the length of anything the untrusted server observes.
// That property is what lets a security protocol carry tracing at all:
// the adversary's view of a traced read equals its view of a traced
// write equals its view of an untraced access (DESIGN.md §13).
//
// The API is nil-safe end to end: a nil *Tracer starts nil *Spans, and
// every method on a nil Span is a no-op, so uninstrumented deployments
// pay one branch per would-be span and allocate nothing.
package trace

import (
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// A SpanContext identifies one span within one trace — exactly the
// state that crosses the wire. The zero value means "untraced".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether sc refers to a real trace. Trace id zero is
// reserved for "no trace"; span ids are never zero in valid contexts.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

// A SpanRecord is one finished span as retained in the ring buffer and
// exposed over /trace.
type SpanRecord struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64 // 0 for root spans
	Name     string
	Process  string
	Start    time.Time     // wall clock, for display and cross-process ordering
	Duration time.Duration // monotonic, from the span's own clock readings
}

// A Tracer owns one process's span ring buffer. Recording a finished
// span is an atomic cursor increment plus an atomic pointer store; the
// buffer holds the most recent spans and overwrites the oldest, so a
// long-running daemon keeps a bounded recent window for /trace.
type Tracer struct {
	process string
	mask    uint64
	pos     atomic.Uint64
	slots   []atomic.Pointer[SpanRecord]
}

// NewTracer returns a tracer labelled with the given process name
// (e.g. "proxy", "server") retaining at least capacity finished spans.
// Capacity is rounded up to a power of two; values below 16 are raised
// to 16.
func NewTracer(process string, capacity int) *Tracer {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Tracer{process: process, mask: uint64(n - 1), slots: make([]atomic.Pointer[SpanRecord], n)}
}

// Process returns the tracer's process label ("" for nil).
func (t *Tracer) Process() string {
	if t == nil {
		return ""
	}
	return t.process
}

// newID draws a random non-zero id. Ids are sampled, not sequential,
// so ids from different processes never collide in practice and the id
// sequence leaks no request ordering.
func newID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// A Span is one live timed stage. End finishes it and records it in
// its tracer's ring buffer. All methods are safe on a nil Span.
type Span struct {
	tracer  *Tracer
	sc      SpanContext
	parent  uint64
	name    string
	start   time.Time
	endOnce atomic.Bool
}

func (t *Tracer) start(sc SpanContext, parent uint64, name string) *Span {
	return &Span{tracer: t, sc: sc, parent: parent, name: name, start: time.Now()}
}

// StartRoot begins a new trace with a fresh trace id.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(SpanContext{TraceID: newID(), SpanID: newID()}, 0, name)
}

// StartRemote begins a span continuing a trace whose context arrived
// over the wire: same trace id, parented on the sender's span. It
// returns nil for an invalid (untraced) context, so untraced requests
// cost nothing.
func (t *Tracer) StartRemote(sc SpanContext, name string) *Span {
	if t == nil || !sc.Valid() {
		return nil
	}
	return t.start(SpanContext{TraceID: sc.TraceID, SpanID: newID()}, sc.SpanID, name)
}

// Child begins a span within the same trace, parented on s, recorded
// by s's tracer. Returns nil on a nil receiver, so whole call chains
// degrade to no-ops when the root was never started.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(SpanContext{TraceID: s.sc.TraceID, SpanID: newID()}, s.sc.SpanID, name)
}

// Context returns the span's wire context (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the span's trace id (0 for nil) — the value attached
// to histogram exemplars.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.sc.TraceID
}

// End finishes the span and publishes its record. End is idempotent;
// only the first call records.
func (s *Span) End() {
	if s == nil || s.endOnce.Swap(true) {
		return
	}
	t := s.tracer
	r := &SpanRecord{
		TraceID:  s.sc.TraceID,
		SpanID:   s.sc.SpanID,
		ParentID: s.parent,
		Name:     s.name,
		Process:  t.process,
		Start:    s.start,
		Duration: time.Since(s.start),
	}
	t.slots[(t.pos.Add(1)-1)&t.mask].Store(r)
}

// Snapshot returns a copy of every retained span record, unordered.
// It is safe to call concurrently with End.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	out := make([]SpanRecord, 0, len(t.slots))
	for i := range t.slots {
		if r := t.slots[i].Load(); r != nil {
			out = append(out, *r)
		}
	}
	return out
}
