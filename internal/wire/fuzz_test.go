package wire

import (
	"bytes"
	"testing"
)

// FuzzReader feeds arbitrary bytes through a representative decode
// sequence; decoders handle untrusted network input and must fail
// cleanly, never panic.
func FuzzReader(f *testing.F) {
	w := NewWriter(64)
	w.Uint64(7)
	w.String("seed")
	w.BytesPfx([]byte{1, 2, 3})
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = r.Uint64()
		_ = r.String()
		_ = r.BytesPfx()
		_ = r.Uvarint()
		_ = r.Byte()
		_ = r.Raw(3)
		_ = r.Err()
		_ = r.Finish()
	})
}

// FuzzRoundTrip checks encode→decode identity over arbitrary field
// values.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), "", []byte{})
	f.Add(uint64(1<<63), "key", []byte{9, 9})
	f.Fuzz(func(t *testing.T, u uint64, s string, b []byte) {
		w := NewWriter(0)
		w.Uvarint(u)
		w.String(s)
		w.BytesPfx(b)
		r := NewReader(w.Bytes())
		if got := r.Uvarint(); got != u {
			t.Fatalf("uvarint %d != %d", got, u)
		}
		if got := r.String(); got != s {
			t.Fatalf("string %q != %q", got, s)
		}
		if got := r.BytesPfx(); !bytes.Equal(got, b) {
			t.Fatalf("bytes %v != %v", got, b)
		}
		if err := r.Finish(); err != nil {
			t.Fatal(err)
		}
	})
}
