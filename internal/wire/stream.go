package wire

// Stream segment encoding for chunked multi-frame requests
// (MsgLBLAccessStream): a logical request is carried as one begin
// frame, one or more chunk frames, and one end frame, all sharing the
// same session/request id on one connection. Every segment header
// field is fixed-width, so within a shape class (segment kind,
// sub-type, geometry, and element count) frame lengths are invariant
// whatever operation the stream carries — the same property the
// monolithic encodings have, extended frame-by-frame.

// Stream segment kinds, the first byte of every stream frame payload.
const (
	// StreamBegin opens a stream: geometry and chunk-count commitment.
	StreamBegin byte = 0x01
	// StreamChunk carries one chunk of sealed payload.
	StreamChunk byte = 0x02
	// StreamEnd closes a stream, re-committing the chunk count so a
	// truncated stream is distinguishable from a complete one.
	StreamEnd byte = 0x03
)

// Stream sub-types, the second byte of every stream frame payload:
// what one chunk element is.
const (
	// StreamSingle streams one access's table; chunk elements are
	// sealed groups.
	StreamSingle byte = 0x00
	// StreamBatch streams a batch of accesses; chunk elements are whole
	// per-key segments (key, claim, table).
	StreamBatch byte = 0x01
)

// StreamChunkHeaderLen is the fixed width of a chunk frame's header:
// kind, sub, mode, then little-endian u32 groups, index, and count.
// The geometry fields repeat on every chunk so each frame is
// independently classifiable by a shape auditor that keeps no
// cross-frame state.
const StreamChunkHeaderLen = 3 + 4 + 4 + 4

// PutStreamChunkHeader appends a chunk frame's fixed-width header.
func PutStreamChunkHeader(w *Writer, sub, mode byte, groups, index, count uint32) {
	w.Byte(StreamChunk)
	w.Byte(sub)
	w.Byte(mode)
	w.Uint32(groups)
	w.Uint32(index)
	w.Uint32(count)
}

// ReadStreamChunkHeader consumes a chunk frame's header after the kind
// byte has already been read.
func ReadStreamChunkHeader(r *Reader) (sub, mode byte, groups, index, count uint32) {
	sub = r.Byte()
	mode = r.Byte()
	groups = r.Uint32()
	index = r.Uint32()
	count = r.Uint32()
	return sub, mode, groups, index, count
}

// StreamEndLen is the fixed width of an end frame: kind, sub, and the
// little-endian u32 chunk count.
const StreamEndLen = 2 + 4

// PutStreamEnd appends an end frame's payload.
func PutStreamEnd(w *Writer, sub byte, chunks uint32) {
	w.Byte(StreamEnd)
	w.Byte(sub)
	w.Uint32(chunks)
}
