// Package wire implements the binary encoding used by all ORTOA messages.
//
// The format is deliberately simple: fixed-width little-endian integers,
// unsigned varints for lengths, and length-prefixed byte strings. Every
// decode operation is bounds-checked and returns ErrShortBuffer rather
// than panicking, because decoded bytes arrive from untrusted peers.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// Decode errors.
var (
	// ErrShortBuffer reports a message truncated relative to its own
	// length fields.
	ErrShortBuffer = errors.New("wire: short buffer")
	// ErrOverflow reports a varint that does not fit in 64 bits.
	ErrOverflow = errors.New("wire: varint overflow")
	// ErrTooLarge reports a length prefix exceeding the decoder's limit.
	ErrTooLarge = errors.New("wire: length exceeds limit")
)

// MaxBytesLen caps any single length-prefixed byte string. It guards
// against a malicious peer declaring a multi-gigabyte allocation.
const MaxBytesLen = 1 << 28 // 256 MiB

// A Writer appends primitive values to a byte slice. The zero value is
// ready to use; Bytes returns the accumulated encoding.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity pre-allocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// maxPooledWriter caps the buffers the writer pool retains; outliers
// (multi-megabyte batch frames) are left to the garbage collector
// rather than pinned for the process lifetime.
const maxPooledWriter = 4 << 20

var writerPool = sync.Pool{New: func() any { return &Writer{} }}

// GetWriter returns a pooled Writer with at least n bytes of capacity,
// reset to empty. Hot encode paths (one frame per access) use the pool
// so steady-state framing allocates nothing; release with PutWriter.
func GetWriter(n int) *Writer {
	w := writerPool.Get().(*Writer)
	if cap(w.buf) < n {
		w.buf = make([]byte, 0, n)
	} else {
		w.buf = w.buf[:0]
	}
	return w
}

// PutWriter returns w to the pool. The caller must not retain w or any
// slice aliasing its buffer (Bytes, Extend results) past this call; a
// message that outlives the call (e.g. one parked for at-most-once
// replay) must simply not be released.
func PutWriter(w *Writer) {
	if w == nil || cap(w.buf) > maxPooledWriter {
		return
	}
	writerPool.Put(w)
}

// Bytes returns the encoded message. The slice aliases the Writer's
// internal buffer; it must not be modified after further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the writer for reuse without reallocating.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Byte appends a single byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool appends a boolean as one byte (0 or 1).
func (w *Writer) Bool(b bool) {
	if b {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Uint16 appends a fixed-width little-endian uint16.
func (w *Writer) Uint16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// Uint32 appends a fixed-width little-endian uint32.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// Uint64 appends a fixed-width little-endian uint64.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) BytesPfx(p []byte) {
	w.Uvarint(uint64(len(p)))
	w.buf = append(w.buf, p...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends p verbatim with no length prefix.
func (w *Writer) Raw(p []byte) { w.buf = append(w.buf, p...) }

// Extend appends n bytes to the buffer and returns the appended region
// for the caller to fill in place — the zero-copy path for encoders
// that write directly into a frame (e.g. the parallel LBL table build,
// which seals entries into precomputed offsets). The region's contents
// are unspecified (the buffer may be pooled); the caller must overwrite
// every byte before the message is sent. The returned slice aliases the
// Writer's buffer and is invalidated by further writes.
func (w *Writer) Extend(n int) []byte {
	l := len(w.buf)
	if n <= cap(w.buf)-l {
		w.buf = w.buf[:l+n]
	} else {
		w.buf = append(w.buf, make([]byte, n)...)
	}
	return w.buf[l : l+n]
}

// Append passes the writer's buffer to f, which must only extend it by
// appending; the returned slice replaces the buffer. It lets encoders
// (e.g. bulk sealing) write thousands of entries without intermediate
// allocations.
func (w *Writer) Append(f func(dst []byte) []byte) { w.buf = f(w.buf) }

// A Reader consumes primitive values from a byte slice. Methods record
// the first error and subsequent calls return zero values, so a decode
// sequence can be written straight-line and checked once via Err.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Finish returns an error if a decode error occurred or trailing bytes
// remain. Call it after the last field of a fixed-shape message.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail(ErrShortBuffer)
		return nil
	}
	p := r.buf[r.off : r.off+n]
	r.off += n
	return p
}

// Byte consumes one byte.
func (r *Reader) Byte() byte {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool consumes one byte and reports whether it is nonzero.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uint16 consumes a little-endian uint16.
func (r *Reader) Uint16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

// Uint32 consumes a little-endian uint32.
func (r *Reader) Uint32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// Uint64 consumes a little-endian uint64.
func (r *Reader) Uint64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// Uvarint consumes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	switch {
	case n > 0:
		r.off += n
		return v
	case n == 0:
		r.fail(ErrShortBuffer)
	default:
		r.fail(ErrOverflow)
	}
	return 0
}

// BytesPfx consumes a length-prefixed byte string. The returned slice
// aliases the Reader's buffer.
func (r *Reader) BytesPfx() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxBytesLen {
		r.fail(ErrTooLarge)
		return nil
	}
	return r.take(int(n))
}

// BytesCopy consumes a length-prefixed byte string and returns a copy
// that does not alias the Reader's buffer.
func (r *Reader) BytesCopy() []byte {
	p := r.BytesPfx()
	if p == nil {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// String consumes a length-prefixed string.
func (r *Reader) String() string {
	p := r.BytesPfx()
	return string(p)
}

// Raw consumes exactly n bytes with no length prefix. The returned
// slice aliases the Reader's buffer.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// UvarintLen returns the encoded size of v as a varint.
func UvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// TraceRefLen is the fixed length of the trace reference carried in
// every transport frame header: an 8-byte trace id followed by an
// 8-byte parent span id, both little-endian. The field is present —
// and the same length — whether tracing is enabled or not (all zeros
// means "untraced"), so span propagation never changes frame sizes and
// cannot leak operation types through the transcript shape.
const TraceRefLen = 16

// PutTraceRef encodes a trace reference into dst, which must be at
// least TraceRefLen bytes.
func PutTraceRef(dst []byte, traceID, spanID uint64) {
	binary.LittleEndian.PutUint64(dst[0:8], traceID)
	binary.LittleEndian.PutUint64(dst[8:16], spanID)
}

// TraceRef decodes a trace reference from src, which must be at least
// TraceRefLen bytes.
func TraceRef(src []byte) (traceID, spanID uint64) {
	return binary.LittleEndian.Uint64(src[0:8]), binary.LittleEndian.Uint64(src[8:16])
}

// BudgetLen is the fixed length of the deadline budget carried in every
// transport frame header: the caller's remaining time in milliseconds
// as a little-endian uint32. Like the trace reference, the field is
// present — and the same length — whether a deadline exists or not
// (zero means "no deadline"), so deadline propagation never changes
// frame sizes and cannot leak operation types through the transcript
// shape.
const BudgetLen = 4

// PutBudget encodes a deadline budget into dst, which must be at least
// BudgetLen bytes.
func PutBudget(dst []byte, millis uint32) {
	binary.LittleEndian.PutUint32(dst[0:4], millis)
}

// Budget decodes a deadline budget from src, which must be at least
// BudgetLen bytes.
func Budget(src []byte) uint32 {
	return binary.LittleEndian.Uint32(src[0:4])
}
