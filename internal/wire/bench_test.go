package wire

import "testing"

func BenchmarkWriterMixed(b *testing.B) {
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(300)
		w.Uint64(uint64(i))
		w.Byte(7)
		w.Uvarint(uint64(i))
		w.BytesPfx(payload)
	}
}

func BenchmarkReaderMixed(b *testing.B) {
	w := NewWriter(300)
	w.Uint64(42)
	w.Byte(7)
	w.Uvarint(300)
	w.BytesPfx(make([]byte, 256))
	buf := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		r.Uint64()
		r.Byte()
		r.Uvarint()
		r.BytesPfx()
		if err := r.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}
