package wire

import (
	"bytes"
	"errors"
	"math"
	"runtime"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	w := NewWriter(64)
	w.Byte(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.Uint16(0xBEEF)
	w.Uint32(0xDEADBEEF)
	w.Uint64(math.MaxUint64)
	w.Uvarint(300)
	w.BytesPfx([]byte("hello"))
	w.String("world")
	w.Raw([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 0xAB {
		t.Errorf("Byte = %#x, want 0xAB", got)
	}
	if !r.Bool() {
		t.Error("first Bool = false, want true")
	}
	if r.Bool() {
		t.Error("second Bool = true, want false")
	}
	if got := r.Uint16(); got != 0xBEEF {
		t.Errorf("Uint16 = %#x", got)
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != math.MaxUint64 {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.BytesPfx(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("BytesPfx = %q", got)
	}
	if got := r.String(); got != "world" {
		t.Errorf("String = %q", got)
	}
	if got := r.Raw(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Raw = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestShortBuffer(t *testing.T) {
	cases := []struct {
		name string
		read func(*Reader)
	}{
		{"byte", func(r *Reader) { r.Byte() }},
		{"uint16", func(r *Reader) { r.Uint16() }},
		{"uint32", func(r *Reader) { r.Uint32() }},
		{"uint64", func(r *Reader) { r.Uint64() }},
		{"uvarint", func(r *Reader) { r.Uvarint() }},
		{"bytes", func(r *Reader) { r.BytesPfx() }},
		{"raw", func(r *Reader) { r.Raw(5) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(nil)
			tc.read(r)
			if !errors.Is(r.Err(), ErrShortBuffer) {
				t.Errorf("Err = %v, want ErrShortBuffer", r.Err())
			}
		})
	}
}

func TestTruncatedBytesPfx(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(100) // declares 100 bytes
	w.Raw([]byte("short"))
	r := NewReader(w.Bytes())
	if got := r.BytesPfx(); got != nil {
		t.Errorf("BytesPfx = %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Errorf("Err = %v, want ErrShortBuffer", r.Err())
	}
}

func TestLengthLimit(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(MaxBytesLen + 1)
	r := NewReader(w.Bytes())
	r.BytesPfx()
	if !errors.Is(r.Err(), ErrTooLarge) {
		t.Errorf("Err = %v, want ErrTooLarge", r.Err())
	}
}

func TestErrorSticky(t *testing.T) {
	r := NewReader([]byte{1})
	r.Uint64() // fails
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	r.Byte() // would succeed on a fresh reader, must stay failed
	if r.Err() != first {
		t.Errorf("error not sticky: %v then %v", first, r.Err())
	}
}

func TestFinishTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.Byte()
	if err := r.Finish(); err == nil {
		t.Error("Finish accepted trailing bytes")
	}
}

func TestBytesCopyDoesNotAlias(t *testing.T) {
	w := NewWriter(0)
	w.BytesPfx([]byte{9, 9, 9})
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.BytesCopy()
	buf[len(buf)-1] = 0
	if got[2] != 9 {
		t.Error("BytesCopy aliases the input buffer")
	}
}

func TestQuickUvarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		w := NewWriter(0)
		w.Uvarint(v)
		if w.Len() != UvarintLen(v) {
			return false
		}
		r := NewReader(w.Bytes())
		return r.Uvarint() == v && r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(a, b []byte, s string) bool {
		w := NewWriter(0)
		w.BytesPfx(a)
		w.String(s)
		w.BytesPfx(b)
		r := NewReader(w.Bytes())
		ga := r.BytesPfx()
		gs := r.String()
		gb := r.BytesPfx()
		return bytes.Equal(ga, a) && gs == s && bytes.Equal(gb, b) && r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFixedWidthRoundTrip(t *testing.T) {
	f := func(a uint16, b uint32, c uint64, d bool) bool {
		w := NewWriter(0)
		w.Uint16(a)
		w.Uint32(b)
		w.Uint64(c)
		w.Bool(d)
		r := NewReader(w.Bytes())
		return r.Uint16() == a && r.Uint32() == b && r.Uint64() == c && r.Bool() == d && r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtend(t *testing.T) {
	w := NewWriter(8)
	w.Byte(0xAA)
	region := w.Extend(4)
	if len(region) != 4 {
		t.Fatalf("Extend returned %d bytes, want 4", len(region))
	}
	copy(region, []byte{1, 2, 3, 4})
	w.Byte(0xBB)
	want := []byte{0xAA, 1, 2, 3, 4, 0xBB}
	if !bytes.Equal(w.Bytes(), want) {
		t.Errorf("Bytes = %x, want %x", w.Bytes(), want)
	}
	// Growth path: extending beyond capacity must still return a
	// writable window of the final buffer.
	w2 := NewWriter(2)
	w2.Byte(7)
	r2 := w2.Extend(100)
	r2[99] = 42
	if got := w2.Bytes(); len(got) != 101 || got[0] != 7 || got[100] != 42 {
		t.Errorf("grown Extend: len=%d first=%d last=%d", len(got), got[0], got[100])
	}
}

func TestWriterPoolReuse(t *testing.T) {
	w := GetWriter(64)
	w.Raw(bytes.Repeat([]byte{0xFF}, 64))
	PutWriter(w)
	// A pooled writer comes back empty regardless of prior contents.
	w2 := GetWriter(32)
	if w2.Len() != 0 {
		t.Errorf("pooled writer not reset: len=%d", w2.Len())
	}
	PutWriter(w2)
	// Oversized buffers must not be pinned by the pool.
	big := GetWriter(maxPooledWriter + 1)
	PutWriter(big) // must not panic; buffer is dropped
	PutWriter(nil) // tolerated
}

// The batched-frame hot path — get a pooled writer, extend, fill,
// release — must be allocation-free in steady state.
func TestWriterPoolZeroAllocs(t *testing.T) {
	const frame = 4096
	// Warm the pool (and pin to one P so the same pooled writer is seen
	// by every iteration).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	PutWriter(GetWriter(frame))
	if allocs := testing.AllocsPerRun(200, func() {
		w := GetWriter(frame)
		region := w.Extend(frame)
		region[0] = 1
		region[frame-1] = 2
		PutWriter(w)
	}); allocs != 0 {
		t.Errorf("pooled frame encode allocates %v times per op, want 0", allocs)
	}
}
