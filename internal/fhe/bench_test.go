package fhe

import (
	"fmt"
	"testing"
)

func benchParams(b *testing.B, n, qBits int) Parameters {
	b.Helper()
	p, err := NewParameters(n, qBits)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkNTTForward(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprint(n), func(b *testing.B) {
			primes, err := findNTTPrimes(55, n, 1)
			if err != nil {
				b.Fatal(err)
			}
			ctx, err := newNTTContext(primes[0], n)
			if err != nil {
				b.Fatal(err)
			}
			a := make([]uint64, n)
			for i := range a {
				a[i] = uint64(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx.forward(a)
			}
		})
	}
}

func BenchmarkEncrypt(b *testing.B) {
	p := benchParams(b, 512, 370)
	sk, _ := p.KeyGen()
	pt := make([]uint64, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Encrypt(sk, pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	p := benchParams(b, 512, 370)
	sk, _ := p.KeyGen()
	ct, _ := p.Encrypt(sk, []uint64{42})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Decrypt(sk, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMul is the server-side cost of one Proc term — the
// operation whose noise growth dooms FHE-ORTOA (§3.3).
func BenchmarkMul(b *testing.B) {
	p := benchParams(b, 512, 370)
	sk, _ := p.KeyGen()
	x, _ := p.Encrypt(sk, []uint64{3})
	y, _ := p.Encrypt(sk, []uint64{1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Mul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	p := benchParams(b, 512, 370)
	sk, _ := p.KeyGen()
	x, _ := p.Encrypt(sk, []uint64{3})
	y, _ := p.Encrypt(sk, []uint64{1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Add(x, y)
	}
}

func BenchmarkNoiseBudget(b *testing.B) {
	p := benchParams(b, 512, 370)
	sk, _ := p.KeyGen()
	ct, _ := p.Encrypt(sk, []uint64{42})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.NoiseBudget(sk, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCiphertextMarshal(b *testing.B) {
	p := benchParams(b, 512, 370)
	sk, _ := p.KeyGen()
	ct, _ := p.Encrypt(sk, []uint64{42})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ct.Marshal(p)
	}
}
