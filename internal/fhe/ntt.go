package fhe

import (
	"fmt"
	"math/bits"
)

// An nttContext evaluates negacyclic NTTs of length n modulo one
// prime. Forward and inverse transforms use the standard ψ-twisted
// Cooley-Tukey/Gentleman-Sande pair, so polynomial multiplication mod
// X^N+1 is a pointwise product between transforms.
type nttContext struct {
	p    uint64
	n    int
	psi  []uint64 // powers of ψ in bit-reversed order, for the forward pass
	ipsi []uint64 // powers of ψ^{-1} in bit-reversed order, for the inverse
	nInv uint64   // n^{-1} mod p
}

func newNTTContext(p uint64, n int) (*nttContext, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fhe: NTT size %d is not a power of two ≥ 2", n)
	}
	psi, err := primitiveRoot2N(p, n)
	if err != nil {
		return nil, err
	}
	psiInv := modPow(psi, p-2, p) // Fermat inverse
	ctx := &nttContext{
		p:    p,
		n:    n,
		psi:  make([]uint64, n),
		ipsi: make([]uint64, n),
		nInv: modPow(uint64(n), p-2, p),
	}
	logN := bits.TrailingZeros(uint(n))
	cur, curInv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		rev := int(bits.Reverse64(uint64(i)) >> (64 - logN))
		ctx.psi[rev] = cur
		ctx.ipsi[rev] = curInv
		cur = modMul(cur, psi, p)
		curInv = modMul(curInv, psiInv, p)
	}
	return ctx, nil
}

// forward transforms a in place to the NTT domain.
func (c *nttContext) forward(a []uint64) {
	p := c.p
	t := c.n
	for m := 1; m < c.n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			j1 := 2 * i * t
			j2 := j1 + t
			s := c.psi[m+i]
			for j := j1; j < j2; j++ {
				u := a[j]
				v := modMul(a[j+t], s, p)
				a[j] = u + v
				if a[j] >= p {
					a[j] -= p
				}
				if u >= v {
					a[j+t] = u - v
				} else {
					a[j+t] = u + p - v
				}
			}
		}
	}
}

// inverse transforms a in place back to the coefficient domain.
func (c *nttContext) inverse(a []uint64) {
	p := c.p
	t := 1
	for m := c.n >> 1; m >= 1; m >>= 1 {
		j1 := 0
		for i := 0; i < m; i++ {
			j2 := j1 + t
			s := c.ipsi[m+i]
			for j := j1; j < j2; j++ {
				u, v := a[j], a[j+t]
				a[j] = u + v
				if a[j] >= p {
					a[j] -= p
				}
				var w uint64
				if u >= v {
					w = u - v
				} else {
					w = u + p - v
				}
				a[j+t] = modMul(w, s, p)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for i := range a {
		a[i] = modMul(a[i], c.nInv, p)
	}
}

// mulPoly returns the negacyclic product of a and b mod p. a and b are
// consumed (transformed in place); pass copies if the caller needs
// them again.
func (c *nttContext) mulPoly(a, b []uint64) []uint64 {
	c.forward(a)
	c.forward(b)
	out := make([]uint64, c.n)
	for i := range out {
		out[i] = modMul(a[i], b[i], c.p)
	}
	c.inverse(out)
	return out
}
