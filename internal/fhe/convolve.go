package fhe

import (
	"fmt"
	"math/big"
	"sync"
)

// A crtBasis is a set of NTT-friendly primes whose product M bounds an
// exact integer computation: any value in (-M/2, M/2] is recovered
// exactly from its residues.
type crtBasis struct {
	n      int
	primes []uint64
	ctxs   []*nttContext
	prod   *big.Int   // M = Π p_i
	half   *big.Int   // M/2
	coeffs []*big.Int // CRT recombination constants: (M/p_i) · ((M/p_i)^{-1} mod p_i)
}

var (
	basisMu    sync.Mutex
	basisCache = map[string]*crtBasis{}
)

// auxBasis returns a CRT basis of length-n NTT primes whose product
// exceeds 2*bound, so signed values of magnitude ≤ bound reconstruct
// exactly. Bases are cached per (n, prime count).
func auxBasis(n int, bound *big.Int) (*crtBasis, error) {
	need := new(big.Int).Lsh(bound, 1) // 2*bound
	need.Add(need, big.NewInt(1))
	// 60-bit primes: each contributes ~60 bits to the product.
	count := (need.BitLen() + 59) / 60
	if count < 1 {
		count = 1
	}
	key := fmt.Sprintf("%d/%d", n, count)
	basisMu.Lock()
	defer basisMu.Unlock()
	if b, ok := basisCache[key]; ok && b.prod.Cmp(need) >= 0 {
		return b, nil
	}
	for {
		b, err := newCRTBasis(n, count)
		if err != nil {
			return nil, err
		}
		if b.prod.Cmp(need) >= 0 {
			basisCache[key] = b
			return b, nil
		}
		count++
	}
}

func newCRTBasis(n, count int) (*crtBasis, error) {
	primes, err := findNTTPrimes(61, n, count)
	if err != nil {
		return nil, err
	}
	b := &crtBasis{n: n, primes: primes, prod: big.NewInt(1)}
	for _, p := range primes {
		ctx, err := newNTTContext(p, n)
		if err != nil {
			return nil, err
		}
		b.ctxs = append(b.ctxs, ctx)
		b.prod.Mul(b.prod, new(big.Int).SetUint64(p))
	}
	b.half = new(big.Int).Rsh(b.prod, 1)
	for _, p := range primes {
		pi := new(big.Int).SetUint64(p)
		mi := new(big.Int).Div(b.prod, pi)          // M/p_i
		yi := new(big.Int).ModInverse(mi, pi)       // (M/p_i)^{-1} mod p_i
		b.coeffs = append(b.coeffs, mi.Mul(mi, yi)) // M/p_i · y_i
	}
	return b, nil
}

// residues reduces a signed big-int polynomial modulo prime index pi.
func (b *crtBasis) residues(a []*big.Int, pi int) []uint64 {
	p := b.primes[pi]
	pBig := new(big.Int).SetUint64(p)
	out := make([]uint64, b.n)
	tmp := new(big.Int)
	for i, c := range a {
		if c == nil || c.Sign() == 0 {
			continue
		}
		tmp.Mod(c, pBig) // Go's Mod is Euclidean: result in [0, p)
		out[i] = tmp.Uint64()
	}
	return out
}

// reconstruct converts per-prime residue polynomials back to centered
// big-int coefficients in (-M/2, M/2].
func (b *crtBasis) reconstruct(res [][]uint64) []*big.Int {
	out := make([]*big.Int, b.n)
	term := new(big.Int)
	for i := 0; i < b.n; i++ {
		acc := new(big.Int)
		for j := range b.primes {
			term.SetUint64(res[j][i])
			term.Mul(term, b.coeffs[j])
			acc.Add(acc, term)
		}
		acc.Mod(acc, b.prod)
		if acc.Cmp(b.half) > 0 {
			acc.Sub(acc, b.prod)
		}
		out[i] = acc
	}
	return out
}

// convolve returns the exact negacyclic convolution a*b mod X^n+1 over
// the integers, valid as long as every output coefficient has
// magnitude ≤ bound (the caller's promise, enforced by basis size).
func convolve(a, b []*big.Int, n int, bound *big.Int) ([]*big.Int, error) {
	basis, err := auxBasis(n, bound)
	if err != nil {
		return nil, err
	}
	res := make([][]uint64, len(basis.primes))
	for j := range basis.primes {
		ra := basis.residues(a, j)
		rb := basis.residues(b, j)
		res[j] = basis.ctxs[j].mulPoly(ra, rb)
	}
	return basis.reconstruct(res), nil
}
