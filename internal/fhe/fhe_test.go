package fhe

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

// testParams are small fast parameters for unit tests.
func testParams(t *testing.T) Parameters {
	t.Helper()
	p, err := NewParameters(64, 110)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestModMulAgainstBig(t *testing.T) {
	f := func(a, b, m uint64) bool {
		m |= 1 << 40 // keep m large-ish and nonzero
		m &= (1 << 62) - 1
		a %= m
		b %= m
		got := modMul(a, b, m)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, new(big.Int).SetUint64(m))
		return got == want.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModPow(t *testing.T) {
	const p = 97
	if got := modPow(3, 0, p); got != 1 {
		t.Errorf("3^0 = %d", got)
	}
	if got := modPow(3, 96, p); got != 1 { // Fermat
		t.Errorf("3^96 mod 97 = %d, want 1", got)
	}
	if got := modPow(5, 3, p); got != 125%97 {
		t.Errorf("5^3 mod 97 = %d", got)
	}
}

func TestFindNTTPrimes(t *testing.T) {
	primes, err := findNTTPrimes(55, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(primes) != 3 {
		t.Fatalf("got %d primes", len(primes))
	}
	seen := map[uint64]bool{}
	for _, p := range primes {
		if seen[p] {
			t.Errorf("duplicate prime %d", p)
		}
		seen[p] = true
		if (p-1)%(2*1024) != 0 {
			t.Errorf("prime %d is not 1 mod 2N", p)
		}
		if !new(big.Int).SetUint64(p).ProbablyPrime(64) {
			t.Errorf("%d is not prime", p)
		}
	}
	// Deterministic.
	again, err := findNTTPrimes(55, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range primes {
		if primes[i] != again[i] {
			t.Error("findNTTPrimes is not deterministic")
		}
	}
}

func TestNTTRoundTrip(t *testing.T) {
	const n = 128
	primes, err := findNTTPrimes(55, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := newNTTContext(primes[0], n)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]uint64, n)
	for i := range a {
		a[i] = uint64(i*i+7) % primes[0]
	}
	orig := append([]uint64(nil), a...)
	ctx.forward(a)
	ctx.inverse(a)
	for i := range a {
		if a[i] != orig[i] {
			t.Fatalf("NTT roundtrip mismatch at %d: %d != %d", i, a[i], orig[i])
		}
	}
}

func TestNTTMulMatchesSchoolbook(t *testing.T) {
	const n = 32
	primes, err := findNTTPrimes(55, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := primes[0]
	ctx, err := newNTTContext(p, n)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]uint64, n)
	b := make([]uint64, n)
	for i := range a {
		a[i] = uint64(i + 1)
		b[i] = uint64(3*i + 2)
	}
	// Schoolbook negacyclic product.
	want := make([]uint64, n)
	for i := range a {
		for j := range b {
			prod := modMul(a[i], b[j], p)
			k := i + j
			if k < n {
				want[k] = (want[k] + prod) % p
			} else {
				want[k-n] = (want[k-n] + p - prod) % p
			}
		}
	}
	got := ctx.mulPoly(append([]uint64(nil), a...), append([]uint64(nil), b...))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NTT product mismatch at %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestConvolveExactSigned(t *testing.T) {
	// (1 - X) * (1 + X) = 1 - X^2 mod X^n+1; includes negatives.
	const n = 16
	a := make([]*big.Int, n)
	b := make([]*big.Int, n)
	for i := range a {
		a[i] = big.NewInt(0)
		b[i] = big.NewInt(0)
	}
	a[0].SetInt64(1)
	a[1].SetInt64(-1)
	b[0].SetInt64(1)
	b[1].SetInt64(1)
	got, err := convolve(a, b, n, big.NewInt(1000))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int64, n)
	want[0], want[2] = 1, -1
	for i := range got {
		if got[i].Int64() != want[i] {
			t.Errorf("coeff %d = %v, want %d", i, got[i], want[i])
		}
	}
}

func TestConvolveNegacyclicWrap(t *testing.T) {
	// X^(n-1) * X = X^n = -1 mod X^n+1.
	const n = 16
	a := make([]*big.Int, n)
	b := make([]*big.Int, n)
	for i := range a {
		a[i] = big.NewInt(0)
		b[i] = big.NewInt(0)
	}
	a[n-1].SetInt64(1)
	b[1].SetInt64(1)
	got, err := convolve(a, b, n, big.NewInt(10))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int64() != -1 {
		t.Errorf("constant coeff = %v, want -1", got[0])
	}
	for i := 1; i < n; i++ {
		if got[i].Sign() != 0 {
			t.Errorf("coeff %d = %v, want 0", i, got[i])
		}
	}
}

func TestConvolveLargeCoefficients(t *testing.T) {
	// Coefficients near 2^100: the basis must widen and stay exact.
	const n = 8
	big100 := new(big.Int).Lsh(big.NewInt(1), 100)
	a := make([]*big.Int, n)
	b := make([]*big.Int, n)
	for i := range a {
		a[i] = new(big.Int).Set(big100)
		b[i] = new(big.Int).Neg(big100)
	}
	bound := new(big.Int).Lsh(big.NewInt(1), 210)
	got, err := convolve(a, b, n, bound)
	if err != nil {
		t.Fatal(err)
	}
	// Schoolbook check for coefficient 0: sum_{i+j≡0} ±(2^100)·(−2^100).
	// pairs: (0,0) positive slot, (i, n−i) wrap negative for i=1..n−1.
	// coeff0 = −(2^200) + (n−1)·2^200 = (n−2)·2^200.
	want := new(big.Int).Lsh(big.NewInt(1), 200)
	want.Mul(want, big.NewInt(int64(n-2)))
	if got[0].Cmp(want) != 0 {
		t.Errorf("coeff 0 = %v, want %v", got[0], want)
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	p := testParams(t)
	sk, err := p.KeyGen()
	if err != nil {
		t.Fatal(err)
	}
	pt := []uint64{1, 2, 3, 65535, 65536, 0, 42}
	ct, err := p.Encrypt(sk, pt)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Degree() != 1 {
		t.Errorf("fresh ciphertext degree = %d, want 1", ct.Degree())
	}
	got, err := p.Decrypt(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pt {
		if got[i] != want {
			t.Errorf("coeff %d = %d, want %d", i, got[i], want)
		}
	}
	for i := len(pt); i < p.N; i++ {
		if got[i] != 0 {
			t.Errorf("padding coeff %d = %d, want 0", i, got[i])
		}
	}
}

func TestFreshNoiseBudgetPositive(t *testing.T) {
	p := testParams(t)
	sk, _ := p.KeyGen()
	ct, err := p.Encrypt(sk, []uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	budget, err := p.NoiseBudget(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	if budget < 20 {
		t.Errorf("fresh noise budget = %d bits, want well positive", budget)
	}
}

func TestHomomorphicAdd(t *testing.T) {
	p := testParams(t)
	sk, _ := p.KeyGen()
	a, _ := p.Encrypt(sk, []uint64{10, 20})
	b, _ := p.Encrypt(sk, []uint64{5, 65530})
	sum := p.Add(a, b)
	got, err := p.Decrypt(sk, sum)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 15 {
		t.Errorf("coeff 0 = %d, want 15", got[0])
	}
	if got[1] != (20+65530)%p.T {
		t.Errorf("coeff 1 = %d, want %d", got[1], (20+65530)%p.T)
	}
}

func TestHomomorphicMul(t *testing.T) {
	p := testParams(t)
	sk, _ := p.KeyGen()
	a, _ := p.Encrypt(sk, []uint64{6})
	b, _ := p.Encrypt(sk, []uint64{7})
	prod, err := p.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Degree() != 2 {
		t.Errorf("product degree = %d, want 2", prod.Degree())
	}
	got, err := p.Decrypt(sk, prod)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Errorf("6*7 = %d", got[0])
	}
}

func TestHomomorphicMulPolynomial(t *testing.T) {
	// (2 + 3X)·(5 + X) = 10 + 17X + 3X².
	p := testParams(t)
	sk, _ := p.KeyGen()
	a, _ := p.Encrypt(sk, []uint64{2, 3})
	b, _ := p.Encrypt(sk, []uint64{5, 1})
	prod, err := p.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Decrypt(sk, prod)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{10, 17, 3}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("coeff %d = %d, want %d", i, got[i], w)
		}
	}
}

// TestProcSemantics exercises Procedure Pcr' (§3.1): the selector
// arithmetic v_old·c_r + v_new·c_w must retain the old value for reads
// and install the new one for writes.
func TestProcSemantics(t *testing.T) {
	p := testParams(t)
	sk, _ := p.KeyGen()
	vOld, _ := p.Encrypt(sk, []uint64{111})
	vNew, _ := p.Encrypt(sk, []uint64{222})

	proc := func(cr, cw int) uint64 {
		ctR, _ := p.Encrypt(sk, p.EncodeBit(cr))
		ctW, _ := p.Encrypt(sk, p.EncodeBit(cw))
		left, err := p.Mul(vOld, ctR)
		if err != nil {
			t.Fatal(err)
		}
		right, err := p.Mul(vNew, ctW)
		if err != nil {
			t.Fatal(err)
		}
		res := p.Add(left, right)
		got, err := p.Decrypt(sk, res)
		if err != nil {
			t.Fatal(err)
		}
		return got[0]
	}
	if got := proc(1, 0); got != 111 {
		t.Errorf("read Proc = %d, want old value 111", got)
	}
	if got := proc(0, 1); got != 222 {
		t.Errorf("write Proc = %d, want new value 222", got)
	}
}

// TestNoiseGrowthEventuallyFails reproduces §3.3: applying Proc
// repeatedly to the stored ciphertext exhausts the noise budget within
// a small number of accesses.
func TestNoiseGrowthEventuallyFails(t *testing.T) {
	p, err := NewParameters(64, 165) // 3 primes ≈ 165-bit Q
	if err != nil {
		t.Fatal(err)
	}
	sk, _ := p.KeyGen()
	stored, _ := p.Encrypt(sk, []uint64{99})
	budget0, _ := p.NoiseBudget(sk, stored)

	accesses := 0
	for ; accesses < 40; accesses++ {
		budget, err := p.NoiseBudget(sk, stored)
		if err != nil {
			t.Fatal(err)
		}
		if budget <= 0 {
			break
		}
		ctR, _ := p.Encrypt(sk, p.EncodeBit(1))
		ctW, _ := p.Encrypt(sk, p.EncodeBit(0))
		vNew, _ := p.Encrypt(sk, []uint64{0})
		left, err := p.Mul(stored, ctR)
		if err != nil {
			t.Fatal(err)
		}
		right, err := p.Mul(vNew, ctW)
		if err != nil {
			t.Fatal(err)
		}
		stored = p.Add(left, right)
	}
	if accesses == 0 || accesses >= 40 {
		t.Fatalf("budget (fresh %d bits) never exhausted within 40 accesses", budget0)
	}
	t.Logf("noise budget exhausted after %d accesses (fresh budget %d bits)", accesses, budget0)
	// After exhaustion, decryption must no longer return the value.
	got, err := p.Decrypt(sk, stored)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == 99 {
		t.Log("note: decryption happened to survive exhaustion margin")
	}
}

func TestEncodeDecodeBytes(t *testing.T) {
	p := testParams(t)
	for _, val := range [][]byte{nil, {1}, {1, 2}, bytes.Repeat([]byte{0xAB}, 100), {0, 0, 0}} {
		coeffs, err := p.EncodeBytes(val)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.DecodeBytes(coeffs)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val) {
			t.Errorf("roundtrip %x -> %x", val, got)
		}
	}
}

func TestEncodeBytesTooLarge(t *testing.T) {
	p := testParams(t)
	if _, err := p.EncodeBytes(make([]byte, p.PlaintextCapacity()+10)); err == nil {
		t.Error("EncodeBytes accepted an oversized value")
	}
}

func TestEncodeDecodeThroughEncryption(t *testing.T) {
	p := testParams(t)
	sk, _ := p.KeyGen()
	val := []byte("160-byte-ish payload for the kv store ......")
	coeffs, err := p.EncodeBytes(val)
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := p.Encrypt(sk, coeffs)
	dec, _ := p.Decrypt(sk, ct)
	got, err := p.DecodeBytes(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Errorf("through-encryption roundtrip failed: %q", got)
	}
}

func TestCiphertextMarshalRoundTrip(t *testing.T) {
	p := testParams(t)
	sk, _ := p.KeyGen()
	ct, _ := p.Encrypt(sk, []uint64{1234})
	data := ct.Marshal(p)
	back, err := UnmarshalCiphertext(p, data)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := p.Decrypt(sk, back)
	if got[0] != 1234 {
		t.Errorf("decrypt after marshal = %d", got[0])
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	p := testParams(t)
	if _, err := UnmarshalCiphertext(p, []byte{0xFF}); err == nil {
		t.Error("accepted garbage ciphertext")
	}
	if _, err := UnmarshalCiphertext(p, nil); err == nil {
		t.Error("accepted empty ciphertext")
	}
}

func TestCiphertextExpansionReported(t *testing.T) {
	p := DefaultParameters()
	exp := p.CiphertextExpansion()
	if exp < 10 {
		t.Errorf("expansion factor = %.0f, expected large (paper: ~225x)", exp)
	}
	t.Logf("ciphertext expansion factor: %.0fx (paper reports ~225x for SEAL)", exp)
}

func TestParameterValidation(t *testing.T) {
	if _, err := NewParameters(100, 110); err == nil {
		t.Error("accepted non-power-of-two N")
	}
	if _, err := NewParameters(64, 10); err == nil {
		t.Error("accepted tiny qBits")
	}
	if _, err := NewParameters(8, 110); err == nil {
		t.Error("accepted N below minimum")
	}
}

func TestQuickEncryptDecrypt(t *testing.T) {
	p := testParams(t)
	sk, err := p.KeyGen()
	if err != nil {
		t.Fatal(err)
	}
	f := func(vals []uint16) bool {
		if len(vals) > p.N {
			vals = vals[:p.N]
		}
		pt := make([]uint64, len(vals))
		for i, v := range vals {
			pt[i] = uint64(v)
		}
		ct, err := p.Encrypt(sk, pt)
		if err != nil {
			return false
		}
		got, err := p.Decrypt(sk, ct)
		if err != nil {
			return false
		}
		for i, v := range pt {
			if got[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestHomomorphicDistributivity: (a+b)·c = a·c + b·c under encryption.
func TestHomomorphicDistributivity(t *testing.T) {
	p := testParams(t)
	sk, _ := p.KeyGen()
	a, _ := p.Encrypt(sk, []uint64{5})
	b, _ := p.Encrypt(sk, []uint64{9})
	c, _ := p.Encrypt(sk, []uint64{7})

	left, err := p.Mul(p.Add(a, b), c)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := p.Mul(a, c)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := p.Mul(b, c)
	if err != nil {
		t.Fatal(err)
	}
	right := p.Add(ac, bc)

	gotL, _ := p.Decrypt(sk, left)
	gotR, _ := p.Decrypt(sk, right)
	if gotL[0] != 98 || gotR[0] != 98 {
		t.Errorf("(5+9)*7: left=%d right=%d, want 98", gotL[0], gotR[0])
	}
}

// TestMulCommutative: a·b and b·a decrypt identically.
func TestMulCommutative(t *testing.T) {
	p := testParams(t)
	sk, _ := p.KeyGen()
	a, _ := p.Encrypt(sk, []uint64{123, 4})
	b, _ := p.Encrypt(sk, []uint64{17})
	ab, err := p.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := p.Mul(b, a)
	if err != nil {
		t.Fatal(err)
	}
	gotAB, _ := p.Decrypt(sk, ab)
	gotBA, _ := p.Decrypt(sk, ba)
	for i := 0; i < 4; i++ {
		if gotAB[i] != gotBA[i] {
			t.Errorf("coeff %d: ab=%d ba=%d", i, gotAB[i], gotBA[i])
		}
	}
}

// TestAddIdentityAndZeroMul: ct+Enc(0) and ct·Enc(1) preserve the
// plaintext; ct·Enc(0) annihilates it — the three algebraic facts
// Procedure Pcr leans on (§3.1).
func TestAddIdentityAndZeroMul(t *testing.T) {
	p := testParams(t)
	sk, _ := p.KeyGen()
	ct, _ := p.Encrypt(sk, []uint64{777})
	zero, _ := p.Encrypt(sk, []uint64{0})
	one, _ := p.Encrypt(sk, []uint64{1})

	sum := p.Add(ct, zero)
	got, _ := p.Decrypt(sk, sum)
	if got[0] != 777 {
		t.Errorf("ct+0 = %d", got[0])
	}
	prod1, err := p.Mul(ct, one)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = p.Decrypt(sk, prod1)
	if got[0] != 777 {
		t.Errorf("ct*1 = %d", got[0])
	}
	prod0, err := p.Mul(ct, zero)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = p.Decrypt(sk, prod0)
	if got[0] != 0 {
		t.Errorf("ct*0 = %d", got[0])
	}
}
