package fhe

import "testing"

func relinTestSetup(t *testing.T) (Parameters, *SecretKey, *RelinKey) {
	t.Helper()
	p, err := NewParameters(64, 220)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := p.KeyGen()
	if err != nil {
		t.Fatal(err)
	}
	rk, err := p.RelinKeyGen(sk, 20)
	if err != nil {
		t.Fatal(err)
	}
	return p, sk, rk
}

func TestRelinearizePreservesPlaintext(t *testing.T) {
	p, sk, rk := relinTestSetup(t)
	a, _ := p.Encrypt(sk, []uint64{6, 2})
	b, _ := p.Encrypt(sk, []uint64{7})
	prod, err := p.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Degree() != 2 {
		t.Fatalf("product degree = %d", prod.Degree())
	}
	lin, err := p.Relinearize(prod, rk)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Degree() != 1 {
		t.Fatalf("relinearized degree = %d, want 1", lin.Degree())
	}
	got, err := p.Decrypt(sk, lin)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 || got[1] != 14 {
		t.Errorf("decrypt after relin = %d, %d; want 42, 14", got[0], got[1])
	}
}

func TestMulRelinChain(t *testing.T) {
	// Repeated multiply-by-one with relinearization: degree stays 1.
	p, sk, rk := relinTestSetup(t)
	ct, _ := p.Encrypt(sk, []uint64{123})
	for i := 0; i < 3; i++ {
		one, _ := p.Encrypt(sk, []uint64{1})
		var err error
		ct, err = p.MulRelin(ct, one, rk)
		if err != nil {
			t.Fatal(err)
		}
		if ct.Degree() != 1 {
			t.Fatalf("chain step %d: degree = %d", i, ct.Degree())
		}
	}
	got, err := p.Decrypt(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 123 {
		t.Errorf("after relin chain = %d, want 123", got[0])
	}
}

func TestRelinNoiseCost(t *testing.T) {
	// Relinearization adds bounded noise: the budget after MulRelin
	// must stay positive and within a sane distance of plain Mul's.
	p, sk, rk := relinTestSetup(t)
	a, _ := p.Encrypt(sk, []uint64{3})
	b, _ := p.Encrypt(sk, []uint64{5})
	prod, err := p.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	plainBudget, _ := p.NoiseBudget(sk, prod)
	lin, err := p.Relinearize(prod, rk)
	if err != nil {
		t.Fatal(err)
	}
	linBudget, err := p.NoiseBudget(sk, lin)
	if err != nil {
		t.Fatal(err)
	}
	if linBudget <= 0 {
		t.Fatalf("budget after relin = %d", linBudget)
	}
	if plainBudget-linBudget > 40 {
		t.Errorf("relinearization cost %d bits (plain %d, relin %d) — excessive", plainBudget-linBudget, plainBudget, linBudget)
	}
	t.Logf("noise budget: after mul %d bits, after relin %d bits", plainBudget, linBudget)
}

func TestRelinearizePassThrough(t *testing.T) {
	p, sk, rk := relinTestSetup(t)
	ct, _ := p.Encrypt(sk, []uint64{9})
	out, err := p.Relinearize(ct, rk)
	if err != nil {
		t.Fatal(err)
	}
	if out.Degree() != 1 {
		t.Errorf("pass-through changed degree to %d", out.Degree())
	}
}

func TestRelinearizeRejectsHighDegree(t *testing.T) {
	p, sk, rk := relinTestSetup(t)
	a, _ := p.Encrypt(sk, []uint64{1})
	b, _ := p.Encrypt(sk, []uint64{1})
	c, _ := p.Encrypt(sk, []uint64{1})
	ab, err := p.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	abc, err := p.Mul(ab, c) // degree 3
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Relinearize(abc, rk); err == nil {
		t.Error("degree-3 relinearization accepted")
	}
}

func TestRelinKeyGenValidation(t *testing.T) {
	p, sk, _ := relinTestSetup(t)
	if _, err := p.RelinKeyGen(sk, 4); err == nil {
		t.Error("accepted tiny base")
	}
	if _, err := p.RelinKeyGen(sk, 64); err == nil {
		t.Error("accepted oversize base")
	}
}

func TestRelinKeyMarshalRoundTrip(t *testing.T) {
	p, sk, rk := relinTestSetup(t)
	data := rk.Marshal(p)
	back, err := p.UnmarshalRelinKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Digits() != rk.Digits() {
		t.Fatalf("digits %d != %d", back.Digits(), rk.Digits())
	}
	// The restored key must actually work.
	a, _ := p.Encrypt(sk, []uint64{4})
	b, _ := p.Encrypt(sk, []uint64{11})
	prod, _ := p.Mul(a, b)
	lin, err := p.Relinearize(prod, back)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := p.Decrypt(sk, lin)
	if got[0] != 44 {
		t.Errorf("decrypt with restored key = %d", got[0])
	}
}

func TestUnmarshalRelinKeyRejectsGarbage(t *testing.T) {
	p, _, rk := relinTestSetup(t)
	if _, err := p.UnmarshalRelinKey(nil); err == nil {
		t.Error("accepted empty key")
	}
	if _, err := p.UnmarshalRelinKey([]byte{20, 1, 2, 3}); err == nil {
		t.Error("accepted truncated key")
	}
	data := rk.Marshal(p)
	data[0] = 5 // invalid base bits
	if _, err := p.UnmarshalRelinKey(data); err == nil {
		t.Error("accepted invalid base bits")
	}
}
