package fhe

import (
	"fmt"
	"math/big"
)

// Relinearization: evaluation keys that collapse a degree-2 ciphertext
// back to degree 1. The paper's FHE-ORTOA prototype (like this
// package's default path) runs without them, so every access grows the
// stored ciphertext by one degree; with a RelinKey the server keeps
// ciphertexts at constant size and constant per-access compute.
//
// Relinearization does NOT rescue FHE-ORTOA's access budget: BFV
// multiplication scales the *noise* by ~N·T regardless, so decryption
// still fails after a similar number of accesses (see the
// ablation-fhe-relin experiment). It demonstrates that the §3.3
// infeasibility is noise-fundamental, not an artifact of degree
// growth — only bootstrapping or fresher schemes change the verdict
// (§3.3's closing remark).

// A RelinKey is a base-2^baseBits decomposition key: for each digit i,
// a pseudo-encryption of w^i·s² under s. It is an evaluation key: it
// can be given to the untrusted server without revealing s (standard
// RLWE circular-security assumption).
type RelinKey struct {
	baseBits int
	digits   int
	b        [][]*big.Int // b[i] = -(a[i]·s) + w^i·s² + e[i]
	a        [][]*big.Int
}

// Digits returns the number of decomposition digits (key size scales
// with it; relin noise shrinks as digits grow).
func (rk *RelinKey) Digits() int { return rk.digits }

// RelinKeyGen produces a relinearization key for sk with digit width
// baseBits (16–60; smaller digits add less noise but make larger keys
// and slower relinearization).
func (p Parameters) RelinKeyGen(sk *SecretKey, baseBits int) (*RelinKey, error) {
	if baseBits < 16 || baseBits > 60 {
		return nil, fmt.Errorf("fhe: relin base bits %d out of range [16, 60]", baseBits)
	}
	digits := (p.Q.BitLen() + baseBits - 1) / baseBits
	s2, err := p.ringMul(sk.s, sk.s)
	if err != nil {
		return nil, err
	}
	rk := &RelinKey{baseBits: baseBits, digits: digits}
	wPow := big.NewInt(1) // w^i mod Q
	w := new(big.Int).Lsh(big.NewInt(1), uint(baseBits))
	for i := 0; i < digits; i++ {
		a, err := p.uniformPoly()
		if err != nil {
			return nil, err
		}
		e, err := p.noisePoly()
		if err != nil {
			return nil, err
		}
		as, err := p.ringMul(a, sk.s)
		if err != nil {
			return nil, err
		}
		b := make([]*big.Int, p.N)
		for j := 0; j < p.N; j++ {
			v := new(big.Int).Mul(s2[j], wPow)
			v.Add(v, e[j])
			v.Sub(v, as[j])
			v.Mod(v, p.Q)
			b[j] = v
		}
		rk.b = append(rk.b, b)
		rk.a = append(rk.a, a)
		wPow.Mul(wPow, w)
		wPow.Mod(wPow, p.Q)
	}
	return rk, nil
}

// decomposeDigits splits poly (coefficients in [0, Q)) into digit
// polynomials with coefficients < 2^baseBits, least significant first.
func (p Parameters) decomposeDigits(poly []*big.Int, baseBits, digits int) [][]*big.Int {
	mask := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(baseBits)), big.NewInt(1))
	out := make([][]*big.Int, digits)
	for i := range out {
		out[i] = make([]*big.Int, p.N)
	}
	tmp := new(big.Int)
	for j, c := range poly {
		tmp.Mod(c, p.Q)
		for i := 0; i < digits; i++ {
			d := new(big.Int).Rsh(tmp, uint(i*baseBits))
			d.And(d, mask)
			out[i][j] = d
		}
	}
	return out
}

// Relinearize reduces a degree-2 ciphertext to degree 1 using rk.
// Lower-degree ciphertexts pass through unchanged; higher degrees are
// rejected (relinearize after every multiplication instead).
func (p Parameters) Relinearize(ct *Ciphertext, rk *RelinKey) (*Ciphertext, error) {
	switch ct.Degree() {
	case 0, 1:
		return ct, nil
	case 2:
	default:
		return nil, fmt.Errorf("fhe: cannot relinearize degree %d (relinearize after each Mul)", ct.Degree())
	}
	c2digits := p.decomposeDigits(ct.polys[2], rk.baseBits, rk.digits)
	c0 := p.copyPoly(ct.polys[0])
	c1 := p.copyPoly(ct.polys[1])
	for i := 0; i < rk.digits; i++ {
		// Digit coefficients are < 2^baseBits, key coefficients < Q:
		// the standard convolution bound covers the product.
		db, err := p.ringMul(c2digits[i], rk.b[i])
		if err != nil {
			return nil, err
		}
		da, err := p.ringMul(c2digits[i], rk.a[i])
		if err != nil {
			return nil, err
		}
		for j := 0; j < p.N; j++ {
			c0[j].Add(c0[j], db[j])
			c0[j].Mod(c0[j], p.Q)
			c1[j].Add(c1[j], da[j])
			c1[j].Mod(c1[j], p.Q)
		}
	}
	return &Ciphertext{polys: [][]*big.Int{c0, c1}}, nil
}

// MulRelin multiplies and immediately relinearizes, keeping results at
// degree 1.
func (p Parameters) MulRelin(a, b *Ciphertext, rk *RelinKey) (*Ciphertext, error) {
	prod, err := p.Mul(a, b)
	if err != nil {
		return nil, err
	}
	return p.Relinearize(prod, rk)
}

// Marshal serializes the relinearization key for shipping to the
// evaluating server.
func (rk *RelinKey) Marshal(p Parameters) []byte {
	cb := p.coeffBytes()
	size := 16 + rk.digits*2*p.N*cb
	out := make([]byte, 0, size)
	out = append(out, byte(rk.baseBits), byte(rk.digits))
	buf := make([]byte, cb)
	appendPoly := func(poly []*big.Int) {
		for _, c := range poly {
			c.FillBytes(buf)
			out = append(out, buf...)
		}
	}
	for i := 0; i < rk.digits; i++ {
		appendPoly(rk.b[i])
		appendPoly(rk.a[i])
	}
	return out
}

// UnmarshalRelinKey parses a Marshal result.
func (p Parameters) UnmarshalRelinKey(data []byte) (*RelinKey, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("fhe: relin key too short")
	}
	rk := &RelinKey{baseBits: int(data[0]), digits: int(data[1])}
	if rk.baseBits < 16 || rk.baseBits > 60 {
		return nil, fmt.Errorf("fhe: relin key base bits %d invalid", rk.baseBits)
	}
	wantDigits := (p.Q.BitLen() + rk.baseBits - 1) / rk.baseBits
	if rk.digits != wantDigits {
		return nil, fmt.Errorf("fhe: relin key has %d digits, want %d", rk.digits, wantDigits)
	}
	cb := p.coeffBytes()
	want := 2 + rk.digits*2*p.N*cb
	if len(data) != want {
		return nil, fmt.Errorf("fhe: relin key is %d bytes, want %d", len(data), want)
	}
	off := 2
	readPoly := func() ([]*big.Int, error) {
		poly := make([]*big.Int, p.N)
		for j := range poly {
			c := new(big.Int).SetBytes(data[off : off+cb])
			if c.Cmp(p.Q) >= 0 {
				return nil, fmt.Errorf("fhe: relin key coefficient ≥ Q")
			}
			poly[j] = c
			off += cb
		}
		return poly, nil
	}
	for i := 0; i < rk.digits; i++ {
		b, err := readPoly()
		if err != nil {
			return nil, err
		}
		a, err := readPoly()
		if err != nil {
			return nil, err
		}
		rk.b = append(rk.b, b)
		rk.a = append(rk.a, a)
	}
	return rk, nil
}
