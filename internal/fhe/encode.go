package fhe

import "fmt"

// EncodeBytes packs a byte string into plaintext coefficients, two
// bytes per coefficient (T = 65537 > 65535). The length is recorded in
// the first coefficient so DecodeBytes can strip padding.
func (p Parameters) EncodeBytes(value []byte) ([]uint64, error) {
	maxLen := 2 * (p.N - 1)
	if len(value) > maxLen {
		return nil, fmt.Errorf("fhe: value of %d bytes exceeds capacity %d", len(value), maxLen)
	}
	if uint64(len(value)) >= p.T {
		return nil, fmt.Errorf("fhe: value length %d not representable", len(value))
	}
	out := make([]uint64, 1+(len(value)+1)/2)
	out[0] = uint64(len(value))
	for i, b := range value {
		out[1+i/2] |= uint64(b) << (8 * uint(i%2))
	}
	return out, nil
}

// DecodeBytes unpacks an EncodeBytes plaintext.
func (p Parameters) DecodeBytes(coeffs []uint64) ([]byte, error) {
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("fhe: empty plaintext")
	}
	n := int(coeffs[0])
	if n < 0 || n > 2*(len(coeffs)-1) {
		return nil, fmt.Errorf("fhe: implausible decoded length %d (noise overflow?): %w", n, ErrNoiseOverflow)
	}
	out := make([]byte, n)
	for i := range out {
		c := coeffs[1+i/2]
		out[i] = byte(c >> (8 * uint(i%2)))
	}
	return out, nil
}

// EncodeBit returns the constant plaintext polynomial b ∈ {0, 1} —
// the c_r/c_w selector bits of Procedure Pcr (§3.1).
func (p Parameters) EncodeBit(b int) []uint64 {
	return []uint64{uint64(b & 1)}
}
