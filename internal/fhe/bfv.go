package fhe

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"ortoa/internal/wire"
)

// ErrNoiseOverflow reports a decryption whose noise exceeded the
// correctable bound — the failure mode §3.3 observes after repeated
// Proc applications.
var ErrNoiseOverflow = errors.New("fhe: noise budget exhausted, decryption unreliable")

// Parameters fixes a BFV parameter set. Create with NewParameters.
type Parameters struct {
	// N is the ring degree (power of two). Plaintexts carry up to
	// N coefficients mod T, i.e. 2N bytes with the byte encoding.
	N int
	// T is the plaintext modulus.
	T uint64
	// LogQ is the approximate bit length of the ciphertext modulus.
	Q *big.Int

	delta    *big.Int // floor(Q/T)
	qHalf    *big.Int
	tBig     *big.Int
	noiseEta int // centered-binomial parameter; variance = eta/2
}

// NewParameters builds a parameter set with ring degree n and a
// ciphertext modulus of roughly qBits bits (a product of 55-bit
// primes, mirroring SEAL's default modulus chains). The plaintext
// modulus is 65537, so each coefficient carries two bytes.
func NewParameters(n int, qBits int) (Parameters, error) {
	if n < 16 || n&(n-1) != 0 {
		return Parameters{}, fmt.Errorf("fhe: ring degree %d must be a power of two ≥ 16", n)
	}
	if qBits < 55 || qBits > 1200 {
		return Parameters{}, fmt.Errorf("fhe: qBits %d out of range [55, 1200]", qBits)
	}
	count := (qBits + 54) / 55
	primes, err := findNTTPrimes(55, n, count)
	if err != nil {
		return Parameters{}, err
	}
	q := big.NewInt(1)
	for _, p := range primes {
		q.Mul(q, new(big.Int).SetUint64(p))
	}
	params := Parameters{
		N:        n,
		T:        65537,
		Q:        q,
		noiseEta: 20, // variance 10 → σ ≈ 3.16, SEAL's default σ = 3.2
	}
	params.tBig = new(big.Int).SetUint64(params.T)
	params.delta = new(big.Int).Div(q, params.tBig)
	params.qHalf = new(big.Int).Rsh(q, 1)
	return params, nil
}

// DefaultParameters mirrors the paper's working point: enough noise
// budget that Proc applications succeed for a handful of accesses and
// then fail (§3.3 reports roughly 10 with SEAL's N=32768 defaults).
// N=1024 keeps the simulation tractable while preserving that arc.
func DefaultParameters() Parameters {
	p, err := NewParameters(1024, 440)
	if err != nil {
		panic("fhe: default parameters invalid: " + err.Error())
	}
	return p
}

// CiphertextExpansion returns the ratio of serialized ciphertext bytes
// to plaintext capacity bytes — the paper reports ~225x for SEAL's
// configuration (§3.3).
func (p Parameters) CiphertextExpansion() float64 {
	ctBytes := 2 * p.N * p.coeffBytes() // fresh degree-1 ciphertext
	ptBytes := p.PlaintextCapacity()
	return float64(ctBytes) / float64(ptBytes)
}

// PlaintextCapacity returns the number of bytes one plaintext holds.
func (p Parameters) PlaintextCapacity() int { return 2 * p.N }

func (p Parameters) coeffBytes() int { return (p.Q.BitLen() + 7) / 8 }

// A SecretKey is a ternary polynomial s; decrypting a degree-d
// ciphertext uses powers s^0..s^d.
type SecretKey struct {
	params Parameters
	s      []*big.Int
}

// A Ciphertext is a vector of polynomials c_0..c_d over R_Q; its
// Degree d grows with each homomorphic multiplication because the
// scheme (like the paper's usage) carries no relinearization keys.
type Ciphertext struct {
	polys [][]*big.Int
}

// Degree returns the ciphertext degree (fresh encryptions are 1).
func (ct *Ciphertext) Degree() int { return len(ct.polys) - 1 }

// KeyGen samples a fresh ternary secret key.
func (p Parameters) KeyGen() (*SecretKey, error) {
	s := make([]*big.Int, p.N)
	buf := make([]byte, p.N)
	if _, err := rand.Read(buf); err != nil {
		return nil, err
	}
	for i := range s {
		switch buf[i] % 3 {
		case 0:
			s[i] = big.NewInt(-1)
		case 1:
			s[i] = big.NewInt(0)
		default:
			s[i] = big.NewInt(1)
		}
	}
	return &SecretKey{params: p, s: s}, nil
}

// Marshal serializes the secret key (one byte per ternary
// coefficient), so a deployment can share it between trusted parties.
func (sk *SecretKey) Marshal() []byte {
	out := make([]byte, len(sk.s))
	for i, c := range sk.s {
		out[i] = byte(c.Int64() + 1) // {-1,0,1} → {0,1,2}
	}
	return out
}

// UnmarshalSecretKey parses a Marshal result for these parameters.
func (p Parameters) UnmarshalSecretKey(data []byte) (*SecretKey, error) {
	if len(data) != p.N {
		return nil, fmt.Errorf("fhe: secret key has %d coefficients, want %d", len(data), p.N)
	}
	s := make([]*big.Int, p.N)
	for i, b := range data {
		if b > 2 {
			return nil, fmt.Errorf("fhe: secret key coefficient %d out of range", b)
		}
		s[i] = big.NewInt(int64(b) - 1)
	}
	return &SecretKey{params: p, s: s}, nil
}

// uniformPoly samples a polynomial with uniform coefficients in [0, Q).
func (p Parameters) uniformPoly() ([]*big.Int, error) {
	out := make([]*big.Int, p.N)
	for i := range out {
		c, err := rand.Int(rand.Reader, p.Q)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// noisePoly samples centered-binomial noise with variance eta/2.
func (p Parameters) noisePoly() ([]*big.Int, error) {
	out := make([]*big.Int, p.N)
	// Each coefficient consumes 2*eta bits: eta "plus" and eta "minus".
	bitsPer := 2 * p.noiseEta
	buf := make([]byte, (p.N*bitsPer+7)/8)
	if _, err := rand.Read(buf); err != nil {
		return nil, err
	}
	bitAt := func(i int) int64 {
		return int64(buf[i>>3]>>(uint(i)&7)) & 1
	}
	pos := 0
	for i := range out {
		var v int64
		for j := 0; j < p.noiseEta; j++ {
			v += bitAt(pos) - bitAt(pos+1)
			pos += 2
		}
		out[i] = big.NewInt(v)
	}
	return out, nil
}

// centered lifts a mod-Q coefficient into (-Q/2, Q/2].
func (p Parameters) centered(c *big.Int) *big.Int {
	out := new(big.Int).Mod(c, p.Q)
	if out.Cmp(p.qHalf) > 0 {
		out.Sub(out, p.Q)
	}
	return out
}

func (p Parameters) centeredPoly(a []*big.Int) []*big.Int {
	out := make([]*big.Int, len(a))
	for i, c := range a {
		out[i] = p.centered(c)
	}
	return out
}

// convBound is the worst-case output magnitude for a negacyclic
// product of two centered mod-Q polynomials: N·(Q/2)².
func (p Parameters) convBound() *big.Int {
	b := new(big.Int).Set(p.qHalf)
	b.Mul(b, b)
	b.Mul(b, big.NewInt(int64(p.N)))
	return b
}

// ringMul multiplies two polynomials exactly and reduces mod Q.
func (p Parameters) ringMul(a, b []*big.Int) ([]*big.Int, error) {
	prod, err := convolve(p.centeredPoly(a), p.centeredPoly(b), p.N, p.convBound())
	if err != nil {
		return nil, err
	}
	for i := range prod {
		prod[i].Mod(prod[i], p.Q)
	}
	return prod, nil
}

func (p Parameters) addPoly(a, b []*big.Int) []*big.Int {
	out := make([]*big.Int, p.N)
	for i := range out {
		out[i] = new(big.Int)
		switch {
		case i < len(a) && i < len(b):
			out[i].Add(a[i], b[i])
		case i < len(a):
			out[i].Set(a[i])
		case i < len(b):
			out[i].Set(b[i])
		}
		out[i].Mod(out[i], p.Q)
	}
	return out
}

// Encrypt encrypts a plaintext of up to N coefficients mod T under sk.
// The result is a fresh degree-1 ciphertext: c1 = a uniform,
// c0 = -(a·s) + Δ·m + e.
func (p Parameters) Encrypt(sk *SecretKey, plaintext []uint64) (*Ciphertext, error) {
	if len(plaintext) > p.N {
		return nil, fmt.Errorf("fhe: plaintext has %d coefficients, ring degree is %d", len(plaintext), p.N)
	}
	a, err := p.uniformPoly()
	if err != nil {
		return nil, err
	}
	e, err := p.noisePoly()
	if err != nil {
		return nil, err
	}
	as, err := p.ringMul(a, sk.s)
	if err != nil {
		return nil, err
	}
	c0 := make([]*big.Int, p.N)
	for i := range c0 {
		c0[i] = new(big.Int)
		if i < len(plaintext) {
			if plaintext[i] >= p.T {
				return nil, fmt.Errorf("fhe: plaintext coefficient %d ≥ T=%d", plaintext[i], p.T)
			}
			c0[i].SetUint64(plaintext[i])
			c0[i].Mul(c0[i], p.delta)
		}
		c0[i].Add(c0[i], e[i])
		c0[i].Sub(c0[i], as[i])
		c0[i].Mod(c0[i], p.Q)
	}
	return &Ciphertext{polys: [][]*big.Int{c0, a}}, nil
}

// phase computes v = Σ c_i · s^i mod Q, the decryption phase.
func (p Parameters) phase(sk *SecretKey, ct *Ciphertext) ([]*big.Int, error) {
	acc := make([]*big.Int, p.N)
	for i := range acc {
		acc[i] = new(big.Int).Set(ct.polys[0][i])
	}
	sPow := sk.s
	for d := 1; d < len(ct.polys); d++ {
		term, err := p.ringMul(ct.polys[d], sPow)
		if err != nil {
			return nil, err
		}
		for i := range acc {
			acc[i].Add(acc[i], term[i])
			acc[i].Mod(acc[i], p.Q)
		}
		if d+1 < len(ct.polys) {
			sPow, err = p.ringMul(sPow, sk.s)
			if err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// Decrypt recovers the plaintext: m_i = round(T·v_i/Q) mod T. It does
// not detect noise overflow — use NoiseBudget for that; overflowed
// ciphertexts decrypt to garbage exactly as they would in SEAL.
func (p Parameters) Decrypt(sk *SecretKey, ct *Ciphertext) ([]uint64, error) {
	v, err := p.phase(sk, ct)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, p.N)
	num := new(big.Int)
	den := new(big.Int).Lsh(p.Q, 1) // 2Q
	for i, c := range v {
		// round(T·c/Q) = floor((2·T·c + Q) / 2Q)
		num.Mul(c, p.tBig)
		num.Lsh(num, 1)
		num.Add(num, p.Q)
		num.Div(num, den)
		num.Mod(num, p.tBig)
		out[i] = num.Uint64()
	}
	return out, nil
}

// NoiseBudget returns the remaining noise budget of ct in bits,
// measured exactly with the secret key: the bits of headroom before
// round(T·v/Q) stops matching the embedded plaintext. A non-positive
// budget means Decrypt output is unreliable.
func (p Parameters) NoiseBudget(sk *SecretKey, ct *Ciphertext) (int, error) {
	v, err := p.phase(sk, ct)
	if err != nil {
		return 0, err
	}
	maxNoise := new(big.Int)
	noise := new(big.Int)
	m := new(big.Int)
	den := new(big.Int).Lsh(p.Q, 1)
	for _, c := range v {
		cc := p.centered(c)
		// m = round(T·cc/Q); noise = T·cc − m·Q ∈ (−Q/2, Q/2]
		noise.Mul(cc, p.tBig)
		m.Lsh(noise, 1)
		m.Add(m, p.Q)
		m.Div(m, den)
		m.Mul(m, p.Q)
		noise.Sub(noise, m)
		noise.Abs(noise)
		if noise.Cmp(maxNoise) > 0 {
			maxNoise.Set(noise)
		}
	}
	// Budget: log2(Q/2) − log2(maxNoise).
	if maxNoise.Sign() == 0 {
		return p.Q.BitLen() - 1, nil
	}
	return (p.Q.BitLen() - 1) - maxNoise.BitLen(), nil
}

// Add returns the homomorphic sum; degrees need not match.
func (p Parameters) Add(a, b *Ciphertext) *Ciphertext {
	n := len(a.polys)
	if len(b.polys) > n {
		n = len(b.polys)
	}
	polys := make([][]*big.Int, n)
	for i := range polys {
		switch {
		case i < len(a.polys) && i < len(b.polys):
			polys[i] = p.addPoly(a.polys[i], b.polys[i])
		case i < len(a.polys):
			polys[i] = p.copyPoly(a.polys[i])
		default:
			polys[i] = p.copyPoly(b.polys[i])
		}
	}
	return &Ciphertext{polys: polys}
}

func (p Parameters) copyPoly(a []*big.Int) []*big.Int {
	out := make([]*big.Int, len(a))
	for i, c := range a {
		out[i] = new(big.Int).Set(c)
	}
	return out
}

// Mul returns the homomorphic product via the BFV tensor-and-scale:
// res_k = round(T/Q · Σ_{i+j=k} a_i ⊛ b_j). The result degree is
// deg(a)+deg(b); noise grows by roughly log2(2·N·T) bits per
// multiplication, which is what dooms FHE-ORTOA after a handful of
// accesses (§3.3).
func (p Parameters) Mul(a, b *Ciphertext) (*Ciphertext, error) {
	da, db := a.Degree(), b.Degree()
	// Exact integer tensor: sums of convolutions of centered polys.
	pairsMax := da + 1
	if db+1 < pairsMax {
		pairsMax = db + 1
	}
	bound := p.convBound()
	bound.Mul(bound, big.NewInt(int64(pairsMax)))
	acc := make([][]*big.Int, da+db+1)
	for i := 0; i <= da; i++ {
		ca := p.centeredPoly(a.polys[i])
		for j := 0; j <= db; j++ {
			cb := p.centeredPoly(b.polys[j])
			prod, err := convolve(ca, cb, p.N, bound)
			if err != nil {
				return nil, err
			}
			k := i + j
			if acc[k] == nil {
				acc[k] = prod
			} else {
				for x := range prod {
					acc[k][x].Add(acc[k][x], prod[x])
				}
			}
		}
	}
	// Scale by T/Q with rounding, then reduce mod Q.
	den := new(big.Int).Lsh(p.Q, 1)
	polys := make([][]*big.Int, len(acc))
	for k, poly := range acc {
		out := make([]*big.Int, p.N)
		for i, c := range poly {
			v := new(big.Int).Mul(c, p.tBig)
			v.Lsh(v, 1)
			v.Add(v, p.Q)
			v.Div(v, den) // floor((2Tc+Q)/2Q) = round(Tc/Q)
			v.Mod(v, p.Q)
			out[i] = v
		}
		polys[k] = out
	}
	return &Ciphertext{polys: polys}, nil
}

// Marshal serializes the ciphertext: degree, then fixed-width
// coefficients.
func (ct *Ciphertext) Marshal(p Parameters) []byte {
	cb := p.coeffBytes()
	w := wire.NewWriter(8 + len(ct.polys)*p.N*cb)
	w.Uvarint(uint64(len(ct.polys)))
	buf := make([]byte, cb)
	for _, poly := range ct.polys {
		for _, c := range poly {
			c.FillBytes(buf)
			w.Raw(buf)
		}
	}
	return w.Bytes()
}

// UnmarshalCiphertext parses a Marshal result.
func UnmarshalCiphertext(p Parameters, data []byte) (*Ciphertext, error) {
	r := wire.NewReader(data)
	nPolys := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nPolys < 1 || nPolys > 64 {
		return nil, fmt.Errorf("fhe: ciphertext with %d polynomials", nPolys)
	}
	cb := p.coeffBytes()
	polys := make([][]*big.Int, nPolys)
	for i := range polys {
		poly := make([]*big.Int, p.N)
		for j := range poly {
			raw := r.Raw(cb)
			if r.Err() != nil {
				return nil, r.Err()
			}
			c := new(big.Int).SetBytes(raw)
			if c.Cmp(p.Q) >= 0 {
				return nil, fmt.Errorf("fhe: coefficient ≥ Q")
			}
			poly[j] = c
		}
		polys[i] = poly
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return &Ciphertext{polys: polys}, nil
}
