// Package fhe implements the BFV-style fully homomorphic encryption
// scheme FHE-ORTOA builds on (§3). It replaces Microsoft SEAL in the
// paper's prototype.
//
// Plaintexts are polynomials over Z_t[X]/(X^N+1); ciphertexts are
// vectors of polynomials over Z_q[X]/(X^N+1) with big-integer q (a
// product of word-sized primes, like SEAL's default coefficient
// modulus). Homomorphic multiplication grows ciphertext degree — this
// implementation deliberately has no relinearization keys, matching
// the paper's symmetric-key usage — and RLWE noise grows with every
// operation. NoiseBudget exposes the exact remaining budget so the
// §3.3 experiment ("decryption fails after about 10 accesses") can be
// measured rather than asserted.
//
// Internally, all polynomial multiplication is exact integer
// negacyclic convolution evaluated via number-theoretic transforms
// over a set of auxiliary 61-bit primes and recombined by CRT.
package fhe

import (
	"fmt"
	"math/big"
	"math/bits"
)

// modMul returns a*b mod m for a, b < m < 2^62.
func modMul(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

// modPow returns base^exp mod m.
func modPow(base, exp, m uint64) uint64 {
	result := uint64(1)
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			result = modMul(result, base, m)
		}
		base = modMul(base, base, m)
		exp >>= 1
	}
	return result
}

// findNTTPrimes returns count distinct primes p ≡ 1 (mod 2n) just
// below 2^bitLen, largest first. The search is deterministic, so every
// party derives the same primes from the same parameters.
func findNTTPrimes(bitLen, n, count int) ([]uint64, error) {
	if bitLen < 20 || bitLen > 62 {
		return nil, fmt.Errorf("fhe: prime bit length %d out of range [20, 62]", bitLen)
	}
	step := uint64(2 * n)
	// Start at the largest candidate ≡ 1 (mod 2n) below 2^bitLen.
	top := (uint64(1)<<uint(bitLen) - 1)
	cand := top - (top-1)%step // cand ≡ 1 (mod step)
	primes := make([]uint64, 0, count)
	for cand > uint64(1)<<uint(bitLen-1) {
		if new(big.Int).SetUint64(cand).ProbablyPrime(32) {
			primes = append(primes, cand)
			if len(primes) == count {
				return primes, nil
			}
		}
		cand -= step
	}
	return nil, fmt.Errorf("fhe: found only %d/%d %d-bit NTT primes for n=%d", len(primes), count, bitLen, n)
}

// primitiveRoot2N returns ψ, a primitive 2n-th root of unity mod p.
// p must satisfy p ≡ 1 (mod 2n).
func primitiveRoot2N(p uint64, n int) (uint64, error) {
	order := uint64(2 * n)
	if (p-1)%order != 0 {
		return 0, fmt.Errorf("fhe: %d is not 1 mod %d", p, order)
	}
	exp := (p - 1) / order
	// Deterministic search for a base whose power has exact order 2n:
	// ψ = g^((p-1)/2n) has order dividing 2n; it has exact order 2n
	// iff ψ^n ≠ 1, i.e. ψ^n = -1.
	for g := uint64(2); g < p; g++ {
		psi := modPow(g, exp, p)
		if modPow(psi, uint64(n), p) == p-1 {
			return psi, nil
		}
	}
	return 0, fmt.Errorf("fhe: no primitive 2*%d-th root mod %d", n, p)
}
