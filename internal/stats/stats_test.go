package stats

import (
	"sync"
	"testing"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	samples := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 5 * time.Millisecond,
	}
	s := Summarize(samples)
	if s.Count != 5 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Mean != 3*time.Millisecond {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.P50 != 3*time.Millisecond {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.Min != 1*time.Millisecond || s.Max != 5*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]time.Duration{7 * time.Millisecond})
	if s.P50 != 7*time.Millisecond || s.P99 != 7*time.Millisecond {
		t.Errorf("single-sample percentiles = %v/%v", s.P50, s.P99)
	}
	if s.Stddev != 0 {
		t.Errorf("single-sample stddev = %v", s.Stddev)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	samples := []time.Duration{5, 1, 3}
	Summarize(samples)
	if samples[0] != 5 || samples[1] != 1 || samples[2] != 3 {
		t.Error("Summarize reordered the caller's slice")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	samples := []time.Duration{0, 100}
	s := Summarize(samples)
	if s.P50 != 50 {
		t.Errorf("P50 of {0,100} = %v, want 50", s.P50)
	}
}

// seq returns 1..n as durations, shuffled deterministically so the
// tests also exercise Summarize's sort.
func seq(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration((i*7919)%n + 1)
	}
	return out
}

func TestSummarizePercentiles(t *testing.T) {
	cases := []struct {
		name          string
		samples       []time.Duration
		p50, p95, p99 time.Duration
	}{
		{"empty", nil, 0, 0, 0},
		{"single", []time.Duration{42}, 42, 42, 42},
		{"two", []time.Duration{100, 0}, 50, 95, 99},
		{"uniform-1..100", seq(100), 50, 95, 99}, // rank p*(n-1) interpolates: 50.5→50.5 truncated per-bucket
		{"uniform-1..1000", seq(1000), 500, 950, 990},
		{"constant", []time.Duration{7, 7, 7, 7}, 7, 7, 7},
		{"heavy-tail", []time.Duration{1, 1, 1, 1, 1, 1, 1, 1, 1, 1000}, 1, 550, 910},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Summarize(tc.samples)
			// Interpolated ranks land between integers; allow 1ns per
			// truncation but lock the values otherwise.
			within := func(got, want time.Duration) bool {
				d := got - want
				return d >= -1 && d <= 1
			}
			if !within(s.P50, tc.p50) {
				t.Errorf("P50 = %v, want %v", s.P50, tc.p50)
			}
			if !within(s.P95, tc.p95) {
				t.Errorf("P95 = %v, want %v", s.P95, tc.p95)
			}
			if !within(s.P99, tc.p99) {
				t.Errorf("P99 = %v, want %v", s.P99, tc.p99)
			}
			if s.Count != len(tc.samples) {
				t.Errorf("Count = %d, want %d", s.Count, len(tc.samples))
			}
		})
	}
}

func TestPercentileClamped(t *testing.T) {
	sorted := []time.Duration{1, 2, 3}
	if got := percentile(sorted, -0.5); got != 1 {
		t.Errorf("percentile(-0.5) = %v, want min", got)
	}
	if got := percentile(sorted, 1.5); got != 3 {
		t.Errorf("percentile(1.5) = %v, want max", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Errorf("Count = %d, want 800", r.Count())
	}
	s := r.Summarize()
	if s.Count != 800 || s.Mean != time.Millisecond {
		t.Errorf("Summary = %+v", s)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Errorf("Throughput = %f", got)
	}
	if got := Throughput(500, 2*time.Second); got != 250 {
		t.Errorf("Throughput = %f", got)
	}
	if got := Throughput(1, 0); got != 0 {
		t.Errorf("Throughput with zero elapsed = %f", got)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]time.Duration{time.Millisecond})
	if str := s.String(); str == "" {
		t.Error("empty String()")
	}
}
