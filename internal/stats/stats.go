// Package stats collects and summarizes latency samples for the
// experiment harness. Every figure in the paper's evaluation reports
// average latency and throughput; percentiles are kept too because
// tail behaviour explains the concurrency knees of Fig 2b.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// A Recorder accumulates latency samples from concurrent workers.
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewRecorder returns a Recorder with capacity pre-allocated for n
// samples.
func NewRecorder(n int) *Recorder {
	return &Recorder{samples: make([]time.Duration, 0, n)}
}

// Add records one sample. Safe for concurrent use.
func (r *Recorder) Add(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Count returns the number of samples recorded so far.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Summary describes a latency distribution.
type Summary struct {
	Count  int
	Mean   time.Duration
	Stddev time.Duration
	Min    time.Duration
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
	Max    time.Duration
}

// Summarize computes a Summary and leaves the recorder intact.
func (r *Recorder) Summarize() Summary {
	r.mu.Lock()
	samples := append([]time.Duration(nil), r.samples...)
	r.mu.Unlock()
	return Summarize(samples)
}

// Summarize computes distribution statistics over samples.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum float64
	for _, s := range sorted {
		sum += float64(s)
	}
	mean := sum / float64(len(sorted))
	var varSum float64
	for _, s := range sorted {
		d := float64(s) - mean
		varSum += d * d
	}
	return Summary{
		Count:  len(sorted),
		Mean:   time.Duration(mean),
		Stddev: time.Duration(math.Sqrt(varSum / float64(len(sorted)))),
		Min:    sorted[0],
		P50:    percentile(sorted, 0.50),
		P95:    percentile(sorted, 0.95),
		P99:    percentile(sorted, 0.99),
		Max:    sorted[len(sorted)-1],
	}
}

// percentile returns the p-quantile of sorted samples, linearly
// interpolating between the two closest ranks. p is clamped to [0, 1];
// empty input yields 0 and a single sample is every quantile.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// String renders the summary compactly for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Throughput returns operations per second.
func Throughput(ops int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}
