package prf

import "testing"

func BenchmarkEncodeKey(b *testing.B) {
	p := NewRandom()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.EncodeKey("key-00001234")
	}
}

func BenchmarkLabelGenCreate(b *testing.B) {
	p := NewRandom()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.LabelGen("key-00001234")
	}
}

// BenchmarkLabel is the LBL hot path: one AES block per label; an
// access at ℓ=1280, y=2 derives ~5k of these.
func BenchmarkLabel(b *testing.B) {
	gen := NewRandom().LabelGen("key-00001234")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = gen.Label(i&1023, uint8(i&3), uint64(i))
	}
}

func BenchmarkPermuteBits(b *testing.B) {
	gen := NewRandom().LabelGen("key-00001234")
	for i := 0; i < b.N; i++ {
		_ = gen.PermuteBits(i&1023, uint64(i))
	}
}

// BenchmarkLabelSlowPath measures the convenience method that rebuilds
// the generator per call, to document why LabelGen exists.
func BenchmarkLabelSlowPath(b *testing.B) {
	p := NewRandom()
	for i := 0; i < b.N; i++ {
		_ = p.Label("key-00001234", i&1023, uint8(i&3), uint64(i))
	}
}

func BenchmarkAccessLabelSchedule160B(b *testing.B) {
	// The full label derivation of one 160-byte access (y=2,
	// point-and-permute): 8 labels + 2 pads per group × 640 groups.
	p := NewRandom()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen := p.LabelGen("key-00001234")
		ct := uint64(i)
		for g := 0; g < 640; g++ {
			for bits := uint8(0); bits < 4; bits++ {
				_ = gen.Label(g, bits, ct)
				_ = gen.Label(g, bits, ct+1)
			}
			_ = gen.PermuteBits(g, ct)
			_ = gen.PermuteBits(g, ct+1)
		}
	}
}
