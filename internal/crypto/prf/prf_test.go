package prf

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewKeyLength(t *testing.T) {
	if _, err := New(make([]byte, 16)); err == nil {
		t.Error("New accepted a short key")
	}
	if _, err := New(make([]byte, KeySize)); err != nil {
		t.Errorf("New rejected a %d-byte key: %v", KeySize, err)
	}
}

func TestDeterminism(t *testing.T) {
	p := NewRandom()
	if p.EncodeKey("k1") != p.EncodeKey("k1") {
		t.Error("EncodeKey not deterministic")
	}
	if p.Label("k1", 3, 1, 7) != p.Label("k1", 3, 1, 7) {
		t.Error("Label not deterministic")
	}
	if p.PermuteBits("k1", 3, 7) != p.PermuteBits("k1", 3, 7) {
		t.Error("PermuteBits not deterministic")
	}
	if !bytes.Equal(p.DummyValue("k1", 2, 40), p.DummyValue("k1", 2, 40)) {
		t.Error("DummyValue not deterministic")
	}
}

func TestKeyRestoration(t *testing.T) {
	p := NewRandom()
	q, err := New(p.Key())
	if err != nil {
		t.Fatal(err)
	}
	if p.EncodeKey("abc") != q.EncodeKey("abc") {
		t.Error("PRF restored from Key() disagrees with original")
	}
}

func TestDistinctKeysDistinctOutputs(t *testing.T) {
	p, q := NewRandom(), NewRandom()
	if p.EncodeKey("k") == q.EncodeKey("k") {
		t.Error("two random PRFs coincide (astronomically unlikely)")
	}
}

func TestDomainSeparation(t *testing.T) {
	// The same underlying inputs through different roles must differ.
	p := NewRandom()
	enc := p.EncodeKey("k")
	lbl := p.Label("k", 0, 0, 0)
	if enc == lbl {
		t.Error("EncodeKey and Label collide on identical inputs")
	}
}

func TestLabelSensitivity(t *testing.T) {
	p := NewRandom()
	base := p.Label("k", 1, 0, 5)
	variants := []Output{
		p.Label("k2", 1, 0, 5), // key
		p.Label("k", 2, 0, 5),  // group index
		p.Label("k", 1, 1, 5),  // bit value
		p.Label("k", 1, 0, 6),  // counter
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d did not change the label", i)
		}
	}
}

func TestInjectiveEncoding(t *testing.T) {
	// Length-prefixing must prevent concatenation ambiguity:
	// ("ab","c") vs ("a","bc") style collisions on the raw key.
	p := NewRandom()
	if p.EncodeKey("ab") == p.EncodeKey("a\x00b") {
		t.Error("encoding is not injective across embedded separators")
	}
}

func TestDummyValueLengths(t *testing.T) {
	p := NewRandom()
	for _, n := range []int{0, 1, 15, 16, 17, 160, 600} {
		if got := len(p.DummyValue("k", 0, n)); got != n {
			t.Errorf("DummyValue(%d) has length %d", n, got)
		}
	}
}

func TestOutputEqual(t *testing.T) {
	var a, b Output
	a[0] = 1
	if a.Equal(b) {
		t.Error("distinct outputs compare equal")
	}
	b[0] = 1
	if !a.Equal(b) {
		t.Error("equal outputs compare unequal")
	}
}

func TestQuickLabelUniqueAcrossCounters(t *testing.T) {
	p := NewRandom()
	f := func(key string, group uint8, bits uint8, ct uint32) bool {
		a := p.Label(key, int(group), bits&1, uint64(ct))
		b := p.Label(key, int(group), bits&1, uint64(ct)+1)
		return a != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEncodeKeyInjectiveish(t *testing.T) {
	p := NewRandom()
	f := func(a, b string) bool {
		if a == b {
			return true
		}
		return p.EncodeKey(a) != p.EncodeKey(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneSameSchedule(t *testing.T) {
	p := NewRandom()
	gen := p.LabelGen("obj")
	clone := gen.Clone()
	for g := 0; g < 64; g++ {
		for b := uint8(0); b < 4; b++ {
			if gen.Label(g, b, 7) != clone.Label(g, b, 7) {
				t.Fatalf("clone label (%d,%d) diverges", g, b)
			}
		}
		if gen.PermuteBits(g, 7) != clone.PermuteBits(g, 7) {
			t.Fatalf("clone permute bits %d diverge", g)
		}
	}
}

func TestCloneConcurrentUse(t *testing.T) {
	// Clones must be independently usable in parallel: each carries its
	// own scratch over the shared (stateless) block cipher. Run under
	// -race this is the whole point.
	p := NewRandom()
	gen := p.LabelGen("obj")
	want := gen.Label(3, 1, 9)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := gen.Clone()
			for i := 0; i < 500; i++ {
				if c.Label(3, 1, 9) != want {
					t.Error("concurrent clone produced wrong label")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestLabelZeroAllocs(t *testing.T) {
	p := NewRandom()
	gen := p.LabelGen("obj")
	if allocs := testing.AllocsPerRun(200, func() {
		gen.Label(5, 1, 42)
	}); allocs != 0 {
		t.Errorf("Label allocates %v times per op, want 0", allocs)
	}
}
