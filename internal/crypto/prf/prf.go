// Package prf provides the pseudorandom functions ORTOA uses to encode
// object keys and to derive the bit labels of LBL-ORTOA (§2.2, §5).
//
// Key encoding and per-object key derivation are HMAC-SHA256 with
// domain-separated inputs; the per-object label schedule (thousands of
// labels per LBL access) is AES-128 keyed by an HMAC-derived object
// key, one block per label. All outputs are 128 bits — the label size
// r used throughout the paper's cost analysis (§6.3.3). Determinism is
// the load-bearing property: the proxy must be able to regenerate the
// exact labels the server stores.
package prf

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
)

// Size is the output size in bytes of every PRF in this package
// (r = 128 bits in the paper's notation).
const Size = 16

// KeySize is the size in bytes of a PRF secret key.
const KeySize = 32

// Domain separation tags. Each distinct use of the master secret gets
// its own tag so outputs from one role can never collide with another.
const (
	tagKeyEncode = 0x01 // PRF(k): server-side key encoding
	tagLabel     = 0x02 // secret labels for LBL-ORTOA
	tagPermute   = 0x03 // point-and-permute bits (§10.2)
	tagDummy     = 0x04 // dummy value padding for TEE reads
	tagLabelKey  = 0x05 // per-object AES key for LabelGen
)

// An Output is a 128-bit PRF output (a secret label, an encoded key, …).
type Output [Size]byte

// Equal reports whether two outputs are equal in constant time.
func (o Output) Equal(p Output) bool {
	return subtle.ConstantTimeCompare(o[:], p[:]) == 1
}

// String renders the output as hex for logs and tests.
func (o Output) String() string { return fmt.Sprintf("%x", o[:]) }

// A PRF is a keyed pseudorandom function family. It is safe for
// concurrent use: each invocation constructs a fresh HMAC state.
type PRF struct {
	key [KeySize]byte
}

// New returns a PRF keyed with key. The key must be KeySize bytes.
func New(key []byte) (*PRF, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("prf: key must be %d bytes, got %d", KeySize, len(key))
	}
	p := &PRF{}
	copy(p.key[:], key)
	return p, nil
}

// NewRandom returns a PRF keyed with a fresh random key.
func NewRandom() *PRF {
	var key [KeySize]byte
	if _, err := rand.Read(key[:]); err != nil {
		// crypto/rand never fails on supported platforms; treat
		// failure as unrecoverable rather than degrade silently.
		panic("prf: crypto/rand failed: " + err.Error())
	}
	p := &PRF{key: key}
	return p
}

// Key returns a copy of the PRF's secret key, for persistence.
func (p *PRF) Key() []byte {
	out := make([]byte, KeySize)
	copy(out, p.key[:])
	return out
}

func (p *PRF) eval(tag byte, parts ...[]byte) Output {
	mac := hmac.New(sha256.New, p.key[:])
	mac.Write([]byte{tag})
	var lenBuf [8]byte
	for _, part := range parts {
		// Length-prefix every part so concatenations are injective.
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(part)))
		mac.Write(lenBuf[:])
		mac.Write(part)
	}
	var out Output
	copy(out[:], mac.Sum(nil))
	return out
}

// EncodeKey computes PRF(k), the encoded form under which an object's
// key is stored at the untrusted server (§2.2).
func (p *PRF) EncodeKey(key string) Output {
	return p.eval(tagKeyEncode, []byte(key))
}

// Label computes the secret label for the y-bit group at index group of
// object key's value, for bit pattern bits, at access counter ct (§5.2
// step 1.2/1.3). bits packs the group's plaintext bits little-end
// first. Callers generating many labels for one object should use
// LabelGen, which amortizes the per-object derivation.
func (p *PRF) Label(key string, group int, bits uint8, ct uint64) Output {
	return p.LabelGen(key).Label(group, bits, ct)
}

// PermuteBits derives the y one-time-pad bits r1…ry that link table
// positions to labels in the point-and-permute optimization (§10.2).
// The result's low y bits are used. See LabelGen for the bulk path.
func (p *PRF) PermuteBits(key string, group int, ct uint64) uint8 {
	return p.LabelGen(key).PermuteBits(group, ct)
}

// A LabelGen produces the label schedule of one object at one AES-128
// block per label. LBL-ORTOA derives thousands of labels per access
// (two per bit value per group, old and new), so the per-object PRF is
// instantiated once — an HMAC-derived AES key — and each label is a
// single block cipher call on a domain-separated input. AES as a PRF
// is standard up to the 2^64 birthday bound, far beyond any deployment
// counter.
//
// A LabelGen is NOT safe for concurrent use: it carries scratch
// buffers so label derivation is allocation-free. Accesses hold a
// per-key lock and derive one generator each, so a generator is never
// shared.
type LabelGen struct {
	block   cipher.Block
	in, out [16]byte
}

// LabelGen returns the label generator for an object key.
func (p *PRF) LabelGen(key string) *LabelGen {
	seed := p.eval(tagLabelKey, []byte(key))
	block, err := aes.NewCipher(seed[:])
	if err != nil {
		// aes.NewCipher only fails on bad key sizes; seed is 16 bytes.
		panic("prf: " + err.Error())
	}
	return &LabelGen{block: block}
}

// Clone returns an independent generator over the same object's label
// schedule. The underlying AES block cipher is stateless after key
// expansion and is shared; only the scratch buffers are per-instance.
// Cloning therefore skips the HMAC key derivation and AES key schedule
// of LabelGen — the parallel table build hands one clone to each of its
// workers, and the clones derive labels concurrently.
func (g *LabelGen) Clone() *LabelGen {
	return &LabelGen{block: g.block}
}

// labelBlock packs (domain, bits, group, ct) injectively into one AES
// block: byte 0 carries the domain tag and bit pattern, bytes 1–7 the
// group index, bytes 8–15 the counter.
func (g *LabelGen) labelBlock(domain byte, bits uint8, group int, ct uint64) Output {
	g.in[0] = domain<<4 | bits&0x0F
	g.in[1] = byte(group)
	g.in[2] = byte(group >> 8)
	g.in[3] = byte(group >> 16)
	g.in[4] = byte(group >> 24)
	binary.LittleEndian.PutUint64(g.in[8:16], ct)
	g.block.Encrypt(g.out[:], g.in[:])
	return g.out
}

// Label computes the secret label for (group, bits, ct).
func (g *LabelGen) Label(group int, bits uint8, ct uint64) Output {
	return g.labelBlock(tagLabel, bits, group, ct)
}

// PermuteBits derives the point-and-permute pad bits for (group, ct).
func (g *LabelGen) PermuteBits(group int, ct uint64) uint8 {
	out := g.labelBlock(tagPermute, 0, group, ct)
	return out[0]
}

// DummyValue derives a deterministic pseudorandom value of length n,
// used as the indistinguishable v_new payload of TEE-ORTOA reads (§4.1).
func (p *PRF) DummyValue(key string, ct uint64, n int) []byte {
	out := make([]byte, 0, n)
	var ctr [8]byte
	binary.LittleEndian.PutUint64(ctr[:], ct)
	for block := uint64(0); len(out) < n; block++ {
		var blk [8]byte
		binary.LittleEndian.PutUint64(blk[:], block)
		o := p.eval(tagDummy, []byte(key), ctr[:], blk[:])
		out = append(out, o[:]...)
	}
	return out[:n]
}
