package secretbox

import (
	"fmt"
	"testing"
)

func BenchmarkSeal(b *testing.B) {
	box, _ := NewBox(NewRandomKey())
	for _, size := range []int{16, 160, 600} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			msg := make([]byte, size)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = box.Seal(msg)
			}
		})
	}
}

func BenchmarkOpen(b *testing.B) {
	box, _ := NewBox(NewRandomKey())
	msg := make([]byte, 160)
	ct := box.Seal(msg)
	b.SetBytes(160)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := box.Open(ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSealLabel is the proxy's per-entry cost: 2^y·ℓ/y of these
// per LBL access (2560 at the paper's 160-byte default).
func BenchmarkSealLabel(b *testing.B) {
	label := NewRandomKey()
	plain := make([]byte, 17)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SealLabel(label, plain); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenLabelHit is the server's point-and-permute cost: one
// per group.
func BenchmarkOpenLabelHit(b *testing.B) {
	label := NewRandomKey()
	ct, _ := SealLabel(label, make([]byte, 17))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OpenLabel(label, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenLabelMiss is the try-decrypt failure path the
// non-point-and-permute variants pay (§10.2's motivation).
func BenchmarkOpenLabelMiss(b *testing.B) {
	ct, _ := SealLabel(NewRandomKey(), make([]byte, 17))
	wrong := NewRandomKey()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OpenLabel(wrong, ct); err == nil {
			b.Fatal("miss decrypted")
		}
	}
}
