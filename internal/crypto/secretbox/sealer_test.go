package secretbox

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
)

func randBytes(t *testing.T, n int) []byte {
	t.Helper()
	p := make([]byte, n)
	if _, err := rand.Read(p); err != nil {
		t.Fatal(err)
	}
	return p
}

// The in-place sealer must be byte-compatible with SealLabel: both sides
// of the wire may mix the two code paths across versions.
func TestLabelSealerMatchesSealLabel(t *testing.T) {
	label := randBytes(t, 16)
	for _, n := range []int{0, 1, 16, MaxLabelPlaintext} {
		plaintext := randBytes(t, n)
		want, err := SealLabel(label, plaintext)
		if err != nil {
			t.Fatal(err)
		}
		s := NewLabelSealer()
		got := make([]byte, n+LabelTagSize)
		if err := s.SealInto(got, label, plaintext); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("plaintext len %d: SealInto = %x, SealLabel = %x", n, got, want)
		}
	}
}

func TestLabelOpenerRoundTripAndCompat(t *testing.T) {
	label := randBytes(t, 16)
	plaintext := randBytes(t, 17)
	sealed, err := SealLabel(label, plaintext)
	if err != nil {
		t.Fatal(err)
	}
	s := NewLabelSealer()
	o, err := s.Opener(label)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(plaintext))
	if err := o.OpenInto(got, sealed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Errorf("OpenInto = %x, want %x", got, plaintext)
	}
	// And the symmetric direction: OpenLabel opens SealInto output.
	sealed2 := make([]byte, len(plaintext)+LabelTagSize)
	if err := s.SealInto(sealed2, label, plaintext); err != nil {
		t.Fatal(err)
	}
	got2, err := OpenLabel(label, sealed2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, plaintext) {
		t.Errorf("OpenLabel(SealInto) = %x, want %x", got2, plaintext)
	}
}

func TestLabelOpenerRejects(t *testing.T) {
	label := randBytes(t, 16)
	plaintext := randBytes(t, 16)
	s := NewLabelSealer()
	sealed := make([]byte, len(plaintext)+LabelTagSize)
	if err := s.SealInto(sealed, label, plaintext); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(plaintext))

	wrong, err := s.Opener(randBytes(t, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong.OpenInto(dst, sealed); !errors.Is(err, ErrDecrypt) {
		t.Errorf("wrong label: err = %v, want ErrDecrypt", err)
	}

	right, err := s.Opener(label)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sealed {
		mut := append([]byte(nil), sealed...)
		mut[i] ^= 0x01
		// Flips in the pad-covered prefix change the plaintext, not the
		// tag; only tag flips are detectable — same contract as
		// OpenLabel, which the §5.4 proxy-side integrity check covers.
		if i >= len(plaintext) {
			if err := right.OpenInto(dst, mut); !errors.Is(err, ErrDecrypt) {
				t.Errorf("tag flip at %d: err = %v, want ErrDecrypt", i, err)
			}
		}
	}

	if err := right.OpenInto(dst, sealed[:LabelTagSize-1]); !errors.Is(err, ErrDecrypt) {
		t.Errorf("short input: err = %v, want ErrDecrypt", err)
	}
	if err := right.OpenInto(make([]byte, len(plaintext)+1), sealed); err == nil {
		t.Error("mis-sized dst accepted")
	}
}

func TestLabelSealerSizeChecks(t *testing.T) {
	s := NewLabelSealer()
	buf := make([]byte, 64)
	if err := s.SealInto(buf[:16+LabelTagSize], make([]byte, 15), make([]byte, 16)); err == nil {
		t.Error("short label accepted")
	}
	if err := s.SealInto(buf, make([]byte, 16), make([]byte, MaxLabelPlaintext+1)); err == nil {
		t.Error("oversized plaintext accepted")
	}
	if err := s.SealInto(buf[:10], make([]byte, 16), make([]byte, 16)); err == nil {
		t.Error("mis-sized dst accepted")
	}
	if _, err := s.Opener(make([]byte, 8)); err == nil {
		t.Error("Opener accepted short label")
	}
}

// The sealer/opener pair exists to make the table-build and
// trial-decryption hot loops allocation-free; pin that property.
func TestLabelSealerZeroAllocs(t *testing.T) {
	label := randBytes(t, 16)
	plaintext := randBytes(t, 17)
	s := NewLabelSealer()
	dst := make([]byte, len(plaintext)+LabelTagSize)
	if allocs := testing.AllocsPerRun(200, func() {
		if err := s.SealInto(dst, label, plaintext); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("SealInto allocates %v times per op, want 0", allocs)
	}

	out := make([]byte, len(plaintext))
	if allocs := testing.AllocsPerRun(200, func() {
		o, err := s.Opener(label)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.OpenInto(out, dst); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Opener+OpenInto allocates %v times per op, want 0", allocs)
	}
}
