// Package secretbox wraps AES-GCM for the two encryption roles in
// ORTOA.
//
// Box is the general-purpose authenticated encryption used for stored
// values (TEE-ORTOA, the 2RTT baseline) and for client↔proxy payloads.
// Every Seal draws a fresh random nonce, so re-encrypting the same
// value yields an unlinkable ciphertext — the property the 2RTT
// baseline and TEE-ORTOA rely on for read/write indistinguishability
// (§1.1, §4.1).
//
// SealLabel/OpenLabel implement the label-keyed entries of LBL-ORTOA's
// encryption tables with the construction garbled-circuit
// implementations use: the 128-bit label keys exactly one encryption
// ever (labels change on every access), so a single hash of the label
// yields both a one-time pad for the body and a recognition tag. The
// tag is what lets the server recognize the one entry its stored label
// opens (§5.2 step 2.1); end-to-end integrity against a tampering
// server comes from the proxy-side label check of §5.4, which accepts
// only labels its PRF could have produced. One SHA-256 per entry keeps
// the proxy's 2^y·ℓ/y seals per access at the ~2 ms/object cost the
// paper reports (§6.3.3), where an AES-GCM instance per entry would
// dominate the access path.
package secretbox

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
)

// Overhead is the ciphertext expansion of Seal: nonce plus GCM tag.
const Overhead = NonceSize + TagSize

// LabelOverhead is the ciphertext expansion of SealLabel (tag only).
const LabelOverhead = LabelTagSize

// NonceSize is the GCM nonce size in bytes.
const NonceSize = 12

// TagSize is the GCM authentication tag size in bytes.
const TagSize = 16

// ErrDecrypt reports an authentication failure. For LBL-ORTOA this is
// the common case: the server tries entries its stored label cannot
// open.
var ErrDecrypt = errors.New("secretbox: message authentication failed")

// A Box encrypts and decrypts with a fixed AES-GCM key and random
// nonces. It is safe for concurrent use.
type Box struct {
	aead cipher.AEAD
}

// NewBox returns a Box for key, which must be 16, 24, or 32 bytes.
func NewBox(key []byte) (*Box, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("secretbox: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secretbox: %w", err)
	}
	return &Box{aead: aead}, nil
}

// NewRandomKey returns a fresh 16-byte AES-128 key.
func NewRandomKey() []byte {
	key := make([]byte, 16)
	if _, err := rand.Read(key); err != nil {
		panic("secretbox: crypto/rand failed: " + err.Error())
	}
	return key
}

// Seal encrypts plaintext with a fresh random nonce and returns
// nonce‖ciphertext‖tag. len(result) = len(plaintext) + Overhead.
func (b *Box) Seal(plaintext []byte) []byte {
	out := make([]byte, NonceSize, NonceSize+len(plaintext)+TagSize)
	if _, err := rand.Read(out); err != nil {
		panic("secretbox: crypto/rand failed: " + err.Error())
	}
	return b.aead.Seal(out, out[:NonceSize], plaintext, nil)
}

// Open decrypts a Seal result. It returns ErrDecrypt if the ciphertext
// is malformed or fails authentication.
func (b *Box) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, ErrDecrypt
	}
	pt, err := b.aead.Open(nil, sealed[:NonceSize], sealed[NonceSize:], nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// MaxLabelPlaintext is the largest SealLabel body: the 32-byte hash
// must cover the pad plus the tag.
const MaxLabelPlaintext = sha256.Size - LabelTagSize

// LabelTagSize is the recognition tag appended by SealLabel.
const LabelTagSize = 8

// labelDomain separates the entry-pad hash from other SHA-256 uses of
// label-sized inputs. Its length is fixed so labelPad can hash a
// stack-allocated buffer.
const labelDomain = "ortoa/lbl-entry/v1"

func labelPad(label []byte) [sha256.Size]byte {
	var in [len(labelDomain) + 16]byte
	copy(in[:], labelDomain)
	copy(in[len(labelDomain):], label)
	return sha256.Sum256(in[:])
}

// SealLabel encrypts plaintext (≤ MaxLabelPlaintext bytes) under a
// 16-byte one-time label key. The caller must guarantee each label
// keys at most one SealLabel — LBL-ORTOA's label schedule does (a
// label is consumed and replaced on every access).
func SealLabel(label, plaintext []byte) ([]byte, error) {
	return AppendSealLabel(nil, label, plaintext)
}

// AppendSealLabel appends a SealLabel ciphertext to dst and returns
// the extended slice. The proxy seals thousands of entries per access
// into one table buffer; the append form keeps that a single
// allocation.
func AppendSealLabel(dst, label, plaintext []byte) ([]byte, error) {
	if len(label) != 16 {
		return nil, fmt.Errorf("secretbox: label must be 16 bytes, got %d", len(label))
	}
	if len(plaintext) > MaxLabelPlaintext {
		return nil, fmt.Errorf("secretbox: label plaintext %d exceeds %d bytes", len(plaintext), MaxLabelPlaintext)
	}
	pad := labelPad(label)
	for i, b := range plaintext {
		dst = append(dst, b^pad[i])
	}
	return append(dst, pad[sha256.Size-LabelTagSize:]...), nil
}

// OpenLabel attempts to decrypt a SealLabel result with label,
// returning ErrDecrypt when the label does not match — the signal
// LBL-ORTOA's server uses to find the entry meant for it.
func OpenLabel(label, sealed []byte) ([]byte, error) {
	var out []byte
	return AppendOpenLabel(out, label, sealed)
}

// AppendOpenLabel appends the decrypted plaintext to dst and returns
// the extended slice, or ErrDecrypt with dst unchanged. The server
// decrypts one entry per bit group per access; the append form lets it
// reuse one scratch buffer.
func AppendOpenLabel(dst, label, sealed []byte) ([]byte, error) {
	if len(label) != 16 {
		return dst, fmt.Errorf("secretbox: label must be 16 bytes, got %d", len(label))
	}
	if len(sealed) < LabelTagSize || len(sealed) > MaxLabelPlaintext+LabelTagSize {
		return dst, ErrDecrypt
	}
	pad := labelPad(label)
	n := len(sealed) - LabelTagSize
	if subtle.ConstantTimeCompare(sealed[n:], pad[sha256.Size-LabelTagSize:]) != 1 {
		return dst, ErrDecrypt
	}
	for i := 0; i < n; i++ {
		dst = append(dst, sealed[i]^pad[i])
	}
	return dst, nil
}

// A LabelSealer is the allocation-free fast path for bulk label
// sealing: it keeps the domain-separation prefix preloaded in a
// reusable hash input and writes ciphertexts into caller-owned slots
// instead of appending. LBL-ORTOA's table build seals 2^y·ℓ/y
// fixed-size entries per access into precomputed offsets of one
// request buffer; with a sealer that inner loop performs zero
// allocations. Output bytes are identical to SealLabel's, so the wire
// format is unchanged.
//
// A LabelSealer is NOT safe for concurrent use (it carries the hash
// input scratch); each table-build or recovery worker owns one.
type LabelSealer struct {
	in [len(labelDomain) + 16]byte
}

// NewLabelSealer returns a ready sealer. The zero value is not usable.
func NewLabelSealer() LabelSealer {
	var s LabelSealer
	copy(s.in[:], labelDomain)
	return s
}

// pad derives the one-time pad-and-tag block for label, reusing the
// sealer's preloaded hash input.
func (s *LabelSealer) pad(label []byte) [sha256.Size]byte {
	copy(s.in[len(labelDomain):], label)
	return sha256.Sum256(s.in[:])
}

// SealInto writes the SealLabel ciphertext of plaintext under the
// 16-byte one-time label into dst, which must be exactly
// len(plaintext)+LabelTagSize bytes. It allocates nothing.
func (s *LabelSealer) SealInto(dst, label, plaintext []byte) error {
	if len(label) != 16 {
		return fmt.Errorf("secretbox: label must be 16 bytes, got %d", len(label))
	}
	if len(plaintext) > MaxLabelPlaintext {
		return fmt.Errorf("secretbox: label plaintext %d exceeds %d bytes", len(plaintext), MaxLabelPlaintext)
	}
	if len(dst) != len(plaintext)+LabelTagSize {
		return fmt.Errorf("secretbox: seal slot is %d bytes, want %d", len(dst), len(plaintext)+LabelTagSize)
	}
	pad := s.pad(label)
	subtle.XORBytes(dst, plaintext, pad[:len(plaintext)])
	copy(dst[len(plaintext):], pad[sha256.Size-LabelTagSize:])
	return nil
}

// A LabelOpener amortizes trial decryption under one label. LBL-ORTOA's
// server holds a single stored label per group and tries up to 2^y
// table entries against it; the label's pad — the one SHA-256 in the
// construction — need only be computed once for all of those trials,
// where calling OpenLabel per entry would recompute it each time.
type LabelOpener struct {
	pad [sha256.Size]byte
}

// Opener derives the trial-decryption state for a 16-byte label.
func (s *LabelSealer) Opener(label []byte) (LabelOpener, error) {
	if len(label) != 16 {
		return LabelOpener{}, fmt.Errorf("secretbox: label must be 16 bytes, got %d", len(label))
	}
	return LabelOpener{pad: s.pad(label)}, nil
}

// OpenInto attempts to open sealed into dst, which must be exactly
// len(sealed)-LabelTagSize bytes. It returns ErrDecrypt (with dst
// untouched) when the opener's label does not match — the common case
// for the server's trial decryption — and allocates nothing on any
// path.
func (o *LabelOpener) OpenInto(dst, sealed []byte) error {
	n := len(sealed) - LabelTagSize
	if n < 0 || n > MaxLabelPlaintext {
		return ErrDecrypt
	}
	if len(dst) != n {
		return fmt.Errorf("secretbox: open slot is %d bytes, want %d", len(dst), n)
	}
	if subtle.ConstantTimeCompare(sealed[n:], o.pad[sha256.Size-LabelTagSize:]) != 1 {
		return ErrDecrypt
	}
	subtle.XORBytes(dst, sealed[:n], o.pad[:n])
	return nil
}
