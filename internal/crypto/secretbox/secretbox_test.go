package secretbox

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newTestBox(t *testing.T) *Box {
	t.Helper()
	b, err := NewBox(NewRandomKey())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSealOpenRoundTrip(t *testing.T) {
	b := newTestBox(t)
	msg := []byte("the quick brown fox")
	ct := b.Seal(msg)
	if len(ct) != len(msg)+Overhead {
		t.Errorf("ciphertext length = %d, want %d", len(ct), len(msg)+Overhead)
	}
	pt, err := b.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Errorf("Open = %q, want %q", pt, msg)
	}
}

func TestSealFreshness(t *testing.T) {
	// Re-encrypting the same plaintext must give an unlinkable
	// ciphertext — the indistinguishability the 2RTT baseline and
	// TEE-ORTOA rely on.
	b := newTestBox(t)
	msg := []byte("same value")
	if bytes.Equal(b.Seal(msg), b.Seal(msg)) {
		t.Error("two Seals of the same plaintext are identical")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	b := newTestBox(t)
	ct := b.Seal([]byte("payload"))
	for i := range ct {
		mut := append([]byte(nil), ct...)
		mut[i] ^= 0x01
		if _, err := b.Open(mut); !errors.Is(err, ErrDecrypt) {
			t.Fatalf("flip at byte %d: err = %v, want ErrDecrypt", i, err)
		}
	}
}

func TestOpenRejectsShortInput(t *testing.T) {
	b := newTestBox(t)
	for n := 0; n < Overhead; n++ {
		if _, err := b.Open(make([]byte, n)); !errors.Is(err, ErrDecrypt) {
			t.Errorf("len %d: err = %v, want ErrDecrypt", n, err)
		}
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	b1, b2 := newTestBox(t), newTestBox(t)
	ct := b1.Seal([]byte("secret"))
	if _, err := b2.Open(ct); !errors.Is(err, ErrDecrypt) {
		t.Errorf("wrong key: err = %v, want ErrDecrypt", err)
	}
}

func TestNewBoxKeySizes(t *testing.T) {
	for _, n := range []int{16, 24, 32} {
		if _, err := NewBox(make([]byte, n)); err != nil {
			t.Errorf("NewBox(%d bytes): %v", n, err)
		}
	}
	for _, n := range []int{0, 8, 15, 17, 33} {
		if _, err := NewBox(make([]byte, n)); err == nil {
			t.Errorf("NewBox(%d bytes) accepted invalid key", n)
		}
	}
}

func TestLabelRoundTrip(t *testing.T) {
	label := NewRandomKey()
	msg := []byte("new-label-plus-bits")
	ct, err := SealLabel(label, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct) != len(msg)+LabelOverhead {
		t.Errorf("label ciphertext length = %d, want %d", len(ct), len(msg)+LabelOverhead)
	}
	pt, err := OpenLabel(label, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Errorf("OpenLabel = %q, want %q", pt, msg)
	}
}

func TestOpenLabelWrongLabel(t *testing.T) {
	// This failure is LBL-ORTOA's server-side signal for "not my
	// entry": it must be a clean ErrDecrypt, never a success.
	ct, err := SealLabel(NewRandomKey(), []byte("entry"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLabel(NewRandomKey(), ct); !errors.Is(err, ErrDecrypt) {
		t.Errorf("wrong label: err = %v, want ErrDecrypt", err)
	}
}

func TestSealLabelRejectsOversize(t *testing.T) {
	if _, err := SealLabel(NewRandomKey(), make([]byte, MaxLabelPlaintext+1)); err == nil {
		t.Error("SealLabel accepted an oversize plaintext")
	}
}

func TestOpenLabelRejectsOversize(t *testing.T) {
	if _, err := OpenLabel(NewRandomKey(), make([]byte, MaxLabelPlaintext+LabelTagSize+1)); err == nil {
		t.Error("OpenLabel accepted an oversize ciphertext")
	}
}

func TestLabelRejectsBadLabelSize(t *testing.T) {
	if _, err := SealLabel(make([]byte, 15), []byte("x")); err == nil {
		t.Error("SealLabel accepted a 15-byte label")
	}
	if _, err := OpenLabel(make([]byte, 17), []byte("x")); err == nil {
		t.Error("OpenLabel accepted a 17-byte label")
	}
}

func TestSealLabelDeterministic(t *testing.T) {
	// Same label + same plaintext → same ciphertext (zero nonce).
	// The protocol never reuses a label, but the property should hold
	// so table construction is reproducible in tests.
	label := NewRandomKey()
	a, _ := SealLabel(label, []byte("m"))
	b, _ := SealLabel(label, []byte("m"))
	if !bytes.Equal(a, b) {
		t.Error("SealLabel is not deterministic for a fixed label")
	}
}

func TestQuickSealOpen(t *testing.T) {
	b := newTestBox(t)
	f := func(msg []byte) bool {
		pt, err := b.Open(b.Seal(msg))
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLabelSealOpen(t *testing.T) {
	label := NewRandomKey()
	f := func(msg []byte) bool {
		if len(msg) > MaxLabelPlaintext {
			msg = msg[:MaxLabelPlaintext]
		}
		ct, err := SealLabel(label, msg)
		if err != nil {
			return false
		}
		pt, err := OpenLabel(label, ct)
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
