package crashfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	fspkg "io/fs"
	"os"
	"testing"

	"ortoa/internal/vfs"
)

func writeAll(t *testing.T, f vfs.File, data []byte) {
	t.Helper()
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
}

func TestCrashDropsUnsyncedData(t *testing.T) {
	f := New(nil)
	h, err := f.OpenFile("dir/a", os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, h, []byte("synced"))
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncDir("dir"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, h, []byte("-unsynced"))
	f.Crash()

	if _, err := h.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Errorf("stale handle write = %v, want ErrCrashed", err)
	}
	got, err := f.ReadFile("dir/a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("synced")) {
		t.Errorf("post-crash content = %q, want %q", got, "synced")
	}
}

func TestSyncMakesContentDurable(t *testing.T) {
	f := New(nil)
	h, _ := f.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o600)
	writeAll(t, h, []byte("hello"))
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	f.SyncDir(".")
	f.Crash()
	got, err := f.ReadFile("a")
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Errorf("synced content lost: %q, %v", got, err)
	}
}

func TestUnsyncedCreationVanishes(t *testing.T) {
	f := New(nil)
	h, _ := f.OpenFile("ghost", os.O_RDWR|os.O_CREATE, 0o600)
	writeAll(t, h, []byte("data"))
	h.Sync() // content synced, but the directory entry is not
	f.Crash()
	if _, err := f.ReadFile("ghost"); !errors.Is(err, fspkg.ErrNotExist) {
		t.Errorf("unsynced creation survived crash: %v", err)
	}
}

func TestRenameVolatileUntilSyncDir(t *testing.T) {
	f := New(nil)
	h, _ := f.OpenFile("old", os.O_RDWR|os.O_CREATE, 0o600)
	writeAll(t, h, []byte("v"))
	h.Sync()
	f.SyncDir(".")

	if err := f.Rename("old", "new"); err != nil {
		t.Fatal(err)
	}
	f.Crash()
	if _, err := f.ReadFile("old"); err != nil {
		t.Error("un-fsynced rename lost the old entry")
	}
	if _, err := f.ReadFile("new"); err == nil {
		t.Error("un-fsynced rename survived crash")
	}

	// Again, but durable this time.
	if err := f.Rename("old", "new"); err != nil {
		t.Fatal(err)
	}
	f.SyncDir(".")
	f.Crash()
	if _, err := f.ReadFile("new"); err != nil {
		t.Error("fsynced rename lost")
	}
	if _, err := f.ReadFile("old"); err == nil {
		t.Error("fsynced rename resurrected the old entry")
	}
}

func TestRemoveResurrectedWithoutSyncDir(t *testing.T) {
	f := New(nil)
	h, _ := f.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o600)
	writeAll(t, h, []byte("v"))
	h.Sync()
	f.SyncDir(".")
	if err := f.Remove("a"); err != nil {
		t.Fatal(err)
	}
	f.Crash()
	if _, err := f.ReadFile("a"); err != nil {
		t.Error("removal without dir fsync was durable")
	}
}

func TestTornWriteSeeded(t *testing.T) {
	// With TornWriteProb 1 and a pending write, some seed must produce
	// a strict prefix of the unsynced write.
	torn := false
	for seed := uint64(0); seed < 32 && !torn; seed++ {
		f := New(&Plan{Seed: seed, TornWriteProb: 1})
		h, _ := f.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o600)
		h.Sync()
		f.SyncDir(".")
		writeAll(t, h, []byte("0123456789"))
		f.Crash()
		got, err := f.ReadFile("a")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) > 0 && len(got) < 10 {
			if !bytes.Equal(got, []byte("0123456789")[:len(got)]) {
				t.Fatalf("torn write is not a prefix: %q", got)
			}
			torn = true
		}
	}
	if !torn {
		t.Error("no seed in 0..31 produced a torn write with TornWriteProb=1")
	}
}

func TestInjectedErrorsAndBudget(t *testing.T) {
	f := New(&Plan{Seed: 7, WriteErrProb: 1, MaxFaults: 2})
	h, _ := f.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o600)
	fails := 0
	for i := 0; i < 5; i++ {
		if _, err := h.Write([]byte("x")); err != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Errorf("injected %d write errors, want MaxFaults=2", fails)
	}
	if f.Stats().WriteErrs != 2 {
		t.Errorf("Stats.WriteErrs = %d", f.Stats().WriteErrs)
	}
}

func TestSeekReadTruncate(t *testing.T) {
	f := New(nil)
	h, _ := f.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o600)
	writeAll(t, h, []byte("0123456789"))
	if _, err := h.Seek(2, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := io.ReadFull(h, buf); err != nil || string(buf) != "234" {
		t.Errorf("read after seek = %q, %v", buf, err)
	}
	if err := h.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if n, _ := h.Size(); n != 4 {
		t.Errorf("size after truncate = %d", n)
	}
	// Seek relative to the (shrunk) end.
	if pos, err := h.Seek(-1, io.SeekEnd); err != nil || pos != 3 {
		t.Errorf("SeekEnd = %d, %v", pos, err)
	}
}

func TestWriteFileAtomicSurvivesCrashOnlyAfterCompletion(t *testing.T) {
	f := New(nil)
	if err := vfs.WriteFileAtomic(f, "dir/cfg", func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	f.Crash()
	got, err := f.ReadFile("dir/cfg")
	if err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("atomic write lost in crash: %q, %v", got, err)
	}

	// A second save that crashes before the rename leaves v1 intact.
	h, err := f.OpenFile("dir/cfg.tmp", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, h, []byte("v2-partial"))
	f.Crash()
	got, err = f.ReadFile("dir/cfg")
	if err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("old content damaged by crashed save: %q, %v", got, err)
	}
}

func TestCrashStatsCount(t *testing.T) {
	f := New(nil)
	for i := 0; i < 3; i++ {
		h, _ := f.OpenFile(fmt.Sprintf("f%d", i), os.O_RDWR|os.O_CREATE, 0o600)
		writeAll(t, h, []byte("x"))
	}
	f.Crash()
	st := f.Stats()
	if st.Crashes != 1 {
		t.Errorf("Crashes = %d", st.Crashes)
	}
	if st.DroppedOps != 3 {
		t.Errorf("DroppedOps = %d, want 3 unsynced creations", st.DroppedOps)
	}
}
