// Package crashfs is an in-memory filesystem with crash-fault
// injection — netsim's FaultPlan idea applied to the disk. It
// implements the vfs surface the kvstore's WAL, snapshot, and
// checkpoint code writes through, and models exactly the failure
// shapes POSIX permits:
//
//   - data written but not fsynced lives only in the "page cache":
//     a simulated crash (Crash) may write back any prefix of the
//     pending writes, tear the next one mid-buffer, and drop the
//     rest — so torn final records and lost acknowledged-but-unsynced
//     writes both occur;
//   - file creations, renames, and removals are volatile until the
//     parent directory is fsynced (SyncDir): a crash rolls the
//     directory back, resurrecting removed files and undoing renames;
//   - writes and fsyncs can fail outright with injected errors,
//     exercising the store's sticky fail-stop path.
//
// Random faults draw from one PRNG seeded with Plan.Seed, so a crash
// run is reproducible against a deterministic workload. The zero Plan
// injects no write/sync errors and drops every unsynced byte at a
// crash (the strictest legal outcome).
package crashfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand/v2"
	"os"
	"sync"
	"sync/atomic"

	"ortoa/internal/vfs"
)

// ErrCrashed is returned by every operation on a handle opened before
// the last Crash: the process that held it is gone.
var ErrCrashed = errors.New("crashfs: file handle lost in crash")

// A Plan configures fault injection for an FS.
type Plan struct {
	// Seed initializes the fault PRNG.
	Seed uint64
	// WriteErrProb is the per-write probability of an injected IO
	// error (the write does not apply).
	WriteErrProb float64
	// SyncErrProb is the per-fsync probability of an injected IO
	// error. The store treats these as fatal (sticky WAL failure).
	SyncErrProb float64
	// TornWriteProb is the probability, at crash time, that the first
	// dropped pending write is partially applied — a torn write.
	TornWriteProb float64
	// MaxFaults caps injected write/sync errors (torn writes and
	// dropped buffers at a crash are crash-driven and exempt). Zero
	// means unlimited.
	MaxFaults int64

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
	used atomic.Int64

	writeErrs atomic.Int64
	syncErrs  atomic.Int64
}

func (p *Plan) init() {
	p.once.Do(func() {
		p.rng = rand.New(rand.NewPCG(p.Seed, 0x0d15c0_fa17))
	})
}

// draw reports a hit with probability prob; prob <= 0 consumes no
// randomness (netsim.FaultPlan's convention).
func (p *Plan) draw(prob float64) bool {
	if p == nil || prob <= 0 {
		return false
	}
	p.init()
	p.mu.Lock()
	hit := p.rng.Float64() < prob
	p.mu.Unlock()
	return hit
}

// intn returns a seeded value in [0, n).
func (p *Plan) intn(n int) int {
	if p == nil || n <= 0 {
		return 0
	}
	p.init()
	p.mu.Lock()
	v := p.rng.IntN(n)
	p.mu.Unlock()
	return v
}

// spend claims one unit of the MaxFaults budget.
func (p *Plan) spend() bool {
	if p.MaxFaults <= 0 {
		return true
	}
	for {
		u := p.used.Load()
		if u >= p.MaxFaults {
			return false
		}
		if p.used.CompareAndSwap(u, u+1) {
			return true
		}
	}
}

// Stats counts injected faults.
type Stats struct {
	WriteErrs     int64 // writes failed with injected errors
	SyncErrs      int64 // fsyncs failed with injected errors
	Crashes       int64 // simulated power losses
	TornWrites    int64 // writes partially applied at a crash
	DroppedWrites int64 // pending writes discarded at a crash
	DroppedOps    int64 // dir entries rolled back at a crash
}

// pendingOp is one unsynced mutation of a file's content, replayable
// at crash time.
type pendingOp struct {
	truncate bool
	off      int64  // write offset, or truncate size
	data     []byte // written bytes (owned)
}

// A node is one file's content. Content durability is per-node and
// survives renames; name visibility is tracked by the FS namespace.
//
// durable is copy-on-write: Sync points it at the live content instead
// of cloning (aliased), and the clone happens only if a later write
// mutates bytes the last Sync covered. Append-mostly files — the WAL,
// the dominant fsync customer — therefore sync in O(1) instead of
// O(file), which keeps long group-commit runs from going quadratic.
type node struct {
	durable []byte      // content as of the last successful Sync
	aliased bool        // durable shares data's backing array
	data    []byte      // live content
	pending []pendingOp // unsynced mutations since the last Sync
}

func (n *node) applyOp(op pendingOp) {
	if op.truncate {
		// Only the slice header changes (truncateTo grows into a fresh
		// array), so an aliased durable is never mutated here.
		n.data = truncateTo(n.data, op.off)
		return
	}
	end := op.off + int64(len(op.data))
	old := int64(len(n.data))
	mutateFrom := op.off
	if old < mutateFrom {
		mutateFrom = old // the zero-fill of the hole starts here
	}
	if n.aliased && mutateFrom < int64(len(n.durable)) {
		// This write lands inside the synced prefix durable aliases:
		// give durable its own copy before the bytes change under it.
		n.durable = append([]byte(nil), n.durable...)
		n.aliased = false
	}
	if old < end {
		if end <= int64(cap(n.data)) {
			n.data = n.data[:end]
			// Reused capacity can hold stale bytes (e.g. after a
			// truncate); any hole before the write must read as zeroes.
			if op.off > old {
				clear(n.data[old:op.off])
			}
		} else {
			newCap := 2 * int64(cap(n.data))
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, n.data)
			n.data = grown
		}
	}
	copy(n.data[op.off:end], op.data)
}

func truncateTo(b []byte, size int64) []byte {
	if size <= int64(len(b)) {
		return b[:size]
	}
	grown := make([]byte, size)
	copy(grown, b)
	return grown
}

// An FS is an in-memory crash-faulty filesystem. The zero value is
// not usable; call New.
type FS struct {
	plan atomic.Pointer[Plan]

	mu      sync.Mutex
	epoch   uint64           // bumped by Crash; invalidates open handles
	live    map[string]*node // current namespace
	durable map[string]*node // namespace as of each dir's last SyncDir

	crashes    atomic.Int64
	tornWrites atomic.Int64
	droppedW   atomic.Int64
	droppedOps atomic.Int64
}

// New returns an empty filesystem governed by plan (nil for no
// injected errors and strict crash semantics).
func New(plan *Plan) *FS {
	f := &FS{
		live:    make(map[string]*node),
		durable: make(map[string]*node),
	}
	if plan != nil {
		f.plan.Store(plan)
	}
	return f
}

// SetPlan swaps the fault plan (nil disables injection). Harness code
// uses it to keep bulk load and recovery phases fault-free.
func (f *FS) SetPlan(plan *Plan) {
	if plan == nil {
		plan = &Plan{}
	}
	f.plan.Store(plan)
}

// Stats returns cumulative fault counts.
func (f *FS) Stats() Stats {
	s := Stats{
		Crashes:       f.crashes.Load(),
		TornWrites:    f.tornWrites.Load(),
		DroppedWrites: f.droppedW.Load(),
		DroppedOps:    f.droppedOps.Load(),
	}
	if p := f.plan.Load(); p != nil {
		s.WriteErrs = p.writeErrs.Load()
		s.SyncErrs = p.syncErrs.Load()
	}
	return s
}

// Crash simulates power loss: every open handle dies, the namespace
// rolls back to its last directory-synced state, and each surviving
// file's content reverts to its last fsync plus a seeded prefix of the
// unsynced writes (the writeback the kernel happened to finish), with
// the first dropped write possibly torn mid-buffer. The filesystem is
// immediately usable again, as the restarted process would see it.
func (f *FS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.epoch++
	f.crashes.Add(1)
	// Roll the namespace back to the durable directory state, counting
	// entries that change: unsynced creations/renames roll back,
	// unsynced removals resurrect.
	for name, n := range f.live {
		if f.durable[name] != n {
			f.droppedOps.Add(1)
		}
	}
	for name := range f.durable {
		if _, ok := f.live[name]; !ok {
			f.droppedOps.Add(1)
		}
	}
	f.live = make(map[string]*node, len(f.durable))
	for name, n := range f.durable {
		f.live[name] = n
	}
	// Settle each surviving file's content.
	seen := make(map[*node]bool)
	for _, n := range f.live {
		if seen[n] {
			continue
		}
		seen[n] = true
		n.data = append([]byte(nil), n.durable...)
		n.aliased = false // rollback gave data a fresh backing array
		if len(n.pending) > 0 {
			// The kernel may have written back any prefix of the
			// pending ops before power was lost.
			plan := f.plan.Load()
			keep := plan.intn(len(n.pending) + 1)
			for _, op := range n.pending[:keep] {
				n.applyOp(op)
			}
			if keep < len(n.pending) {
				next := n.pending[keep]
				if !next.truncate && len(next.data) > 1 && plan.draw(plan.tornProb()) {
					cut := 1 + plan.intn(len(next.data)-1)
					n.applyOp(pendingOp{off: next.off, data: next.data[:cut]})
					f.tornWrites.Add(1)
					keep++
				}
			}
			f.droppedW.Add(int64(len(n.pending) - keep))
			n.pending = nil
			n.durable = append([]byte(nil), n.data...)
		}
	}
}

// tornProb returns the plan's torn-write probability (0 for nil).
func (p *Plan) tornProb() float64 {
	if p == nil {
		return 0
	}
	return p.TornWriteProb
}

// notExist builds an fs.ErrNotExist-wrapping error, matching what the
// kvstore's existence probes expect from a real filesystem.
func notExist(op, name string) error {
	return &fs.PathError{Op: op, Path: name, Err: fs.ErrNotExist}
}

// OpenFile implements vfs.FS.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (vfs.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.live[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, notExist("open", name)
		}
		n = &node{}
		f.live[name] = n
		// The new entry is volatile until its directory is synced;
		// content durability starts empty.
	} else if flag&os.O_TRUNC != 0 {
		n.data = nil
		n.aliased = false // durable keeps the old backing, alone now
		n.pending = append(n.pending, pendingOp{truncate: true})
	}
	return &File{fs: f, node: n, name: name, epoch: f.epoch}, nil
}

// Rename implements vfs.FS. The move is volatile until SyncDir.
func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.live[oldpath]
	if !ok {
		return notExist("rename", oldpath)
	}
	delete(f.live, oldpath)
	f.live[newpath] = n
	return nil
}

// Remove implements vfs.FS. The removal is volatile until SyncDir.
func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.live[name]; !ok {
		return notExist("remove", name)
	}
	delete(f.live, name)
	return nil
}

// MkdirAll implements vfs.FS; the namespace is flat, so it only
// validates nothing is wildly wrong and succeeds.
func (f *FS) MkdirAll(dir string, perm os.FileMode) error { return nil }

// SyncDir implements vfs.FS: every entry change under dir (creations,
// renames, removals) becomes durable.
func (f *FS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for name := range f.durable {
		if vfs.Dir(name) == dir {
			if _, ok := f.live[name]; !ok {
				delete(f.durable, name)
			}
		}
	}
	for name, n := range f.live {
		if vfs.Dir(name) == dir {
			f.durable[name] = n
		}
	}
	return nil
}

// A File is an open crashfs handle.
type File struct {
	fs    *FS
	node  *node
	name  string
	epoch uint64

	mu     sync.Mutex
	pos    int64
	closed bool
}

func (h *File) check() error {
	if h.closed {
		return fmt.Errorf("crashfs: %s: file already closed", h.name)
	}
	h.fs.mu.Lock()
	stale := h.epoch != h.fs.epoch
	h.fs.mu.Unlock()
	if stale {
		return ErrCrashed
	}
	return nil
}

// Name implements vfs.File.
func (h *File) Name() string { return h.name }

// Size implements vfs.File.
func (h *File) Size() (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return int64(len(h.node.data)), nil
}

// Read implements io.Reader.
func (h *File) Read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.pos >= int64(len(h.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[h.pos:])
	h.pos += int64(n)
	return n, nil
}

// Write implements io.Writer. The bytes land in the live content and
// a pending op, durable only after Sync.
func (h *File) Write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	plan := h.fs.plan.Load()
	if plan != nil && plan.draw(plan.WriteErrProb) && plan.spend() {
		plan.writeErrs.Add(1)
		return 0, fmt.Errorf("crashfs: %s: injected write error", h.name)
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	op := pendingOp{off: h.pos, data: append([]byte(nil), p...)}
	h.node.applyOp(op)
	h.node.pending = append(h.node.pending, op)
	h.pos += int64(len(p))
	return len(p), nil
}

// Seek implements io.Seeker.
func (h *File) Seek(offset int64, whence int) (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	h.fs.mu.Lock()
	size := int64(len(h.node.data))
	h.fs.mu.Unlock()
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = h.pos + offset
	case io.SeekEnd:
		abs = size + offset
	default:
		return 0, fmt.Errorf("crashfs: %s: bad whence %d", h.name, whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("crashfs: %s: negative seek", h.name)
	}
	h.pos = abs
	return abs, nil
}

// Truncate implements vfs.File; volatile until Sync like any write.
func (h *File) Truncate(size int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	op := pendingOp{truncate: true, off: size}
	h.node.applyOp(op)
	h.node.pending = append(h.node.pending, op)
	return nil
}

// Sync implements vfs.File: the live content becomes the durable
// content (or an injected fsync error is returned and nothing
// changes — the caller cannot know how much reached the disk, exactly
// like a real failed fsync).
func (h *File) Sync() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	plan := h.fs.plan.Load()
	if plan != nil && plan.draw(plan.SyncErrProb) && plan.spend() {
		plan.syncErrs.Add(1)
		return fmt.Errorf("crashfs: %s: injected fsync error", h.name)
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	// Copy-on-write: alias the live content instead of cloning it. A
	// later write below this length clones first (see applyOp), so the
	// durable view stays exactly the content as of this Sync.
	h.node.durable = h.node.data
	h.node.aliased = true
	h.node.pending = nil
	return nil
}

// Close implements io.Closer.
func (h *File) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return fmt.Errorf("crashfs: %s: file already closed", h.name)
	}
	h.closed = true
	return nil
}

// ReadFileDurable returns the bytes path would hold after a crash
// right now (last-synced content), without disturbing anything — the
// inspection hook crash-shape tests are built on. The second result
// reports whether the entry itself would survive (directory synced).
func (f *FS) ReadFileDurable(path string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.durable[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), n.durable...), true
}

// ReadFile returns path's live content.
func (f *FS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.live[path]
	if !ok {
		return nil, notExist("read", path)
	}
	return append([]byte(nil), n.data...), nil
}

// WriteFile replaces path's live content in one unsynced write,
// creating it if needed.
func (f *FS) WriteFile(path string, data []byte) error {
	h, err := f.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := h.Write(data); err != nil {
		h.Close()
		return err
	}
	return h.Close()
}
