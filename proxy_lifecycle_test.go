package ortoa

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ortoa/internal/netsim"
	"ortoa/internal/transport"
)

// newProxyDeployment builds server ← client over serverLink, loads n
// keys ("key-000"… with value byte 0 = index), and returns the client
// plus a netsim listener for its proxy front end (not yet served).
func newProxyDeployment(t *testing.T, n, valueSize int, serverLink netsim.Link) (*Client, *netsim.Listener) {
	t.Helper()
	server, err := NewServer(ServerConfig{Protocol: ProtocolLBL, ValueSize: valueSize})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	link := netsim.Listen(serverLink)
	go server.Serve(link)
	client, err := NewClient(ClientConfig{Protocol: ProtocolLBL, ValueSize: valueSize, Keys: GenerateKeys(), Conns: 4},
		func() (net.Conn, error) { return link.Dial() })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	data := map[string][]byte{}
	for i := 0; i < n; i++ {
		v := make([]byte, valueSize)
		v[0] = byte(i)
		data[fmt.Sprintf("key-%03d", i)] = v
	}
	if err := client.Load(data); err != nil {
		t.Fatal(err)
	}
	return client, netsim.Listen(netsim.Loopback)
}

// TestServeProxyShutdown is the regression test for the retained-
// server bug: Close must stop a running ServeProxy — the listener
// closes, ServeProxy returns, and end-user requests start failing —
// rather than leaking the accept loop and its connections.
func TestServeProxyShutdown(t *testing.T) {
	client, proxyLn := newProxyDeployment(t, 4, 8, netsim.Loopback)

	served := make(chan error, 1)
	go func() { served <- client.ServeProxy(proxyLn) }()

	users, err := DialProxy(proxyLn.Dial, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer users.Close()
	if v, err := users.Read("key-001"); err != nil || v[0] != 1 {
		t.Fatalf("read before close = %v, %v", v, err)
	}

	if err := client.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-served:
		if !errors.Is(err, transport.ErrClosed) {
			t.Errorf("ServeProxy returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeProxy still running after Close — proxy server leaked")
	}
	if _, err := users.Read("key-001"); err == nil {
		t.Error("read after close succeeded, want error")
	}

	// A front end started after Close must refuse immediately.
	if err := client.ServeProxy(netsim.Listen(netsim.Loopback)); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("ServeProxy after Close = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := client.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestCloseDrainsInFlightProxyAccess checks the graceful half of
// shutdown: an end-user access already being proxied when Close is
// called completes and is answered, not cut mid-response.
func TestCloseDrainsInFlightProxyAccess(t *testing.T) {
	// A real RTT to the server keeps the access in flight long enough
	// for Close to overlap it.
	client, proxyLn := newProxyDeployment(t, 4, 8, netsim.Link{RTT: 60 * time.Millisecond})
	go client.ServeProxy(proxyLn)

	users, err := DialProxy(proxyLn.Dial, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer users.Close()

	type result struct {
		v   []byte
		err error
	}
	res := make(chan result, 1)
	go func() {
		v, err := users.Read("key-002")
		res <- result{v, err}
	}()
	// Let the request reach the proxy handler, then shut down while
	// its server round trip is still in the air.
	time.Sleep(15 * time.Millisecond)
	if err := client.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r := <-res
	if r.err != nil {
		t.Fatalf("in-flight read was cut by Close: %v", r.err)
	}
	if r.v[0] != 2 {
		t.Errorf("in-flight read = %v, want first byte 2", r.v)
	}
}

// TestServeProxyAggregated runs end users through an aggregating
// front end: concurrent sessions coalesce into shared batch round
// trips and still each get their own answer.
func TestServeProxyAggregated(t *testing.T) {
	const n = 8
	const valueSize = 8
	client, proxyLn := newProxyDeployment(t, n, valueSize, netsim.Loopback)
	go client.ServeProxyOptions(proxyLn, ProxyServeOptions{
		AggWindow:   500 * time.Microsecond,
		AggMaxBatch: n,
	})

	users, err := DialProxy(proxyLn.Dial, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer users.Close()

	var wg sync.WaitGroup
	for u := 0; u < n; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%03d", u)
			v, err := users.Read(key)
			if err != nil {
				t.Errorf("user %d read: %v", u, err)
				return
			}
			if v[0] != byte(u) {
				t.Errorf("user %d read %v, want first byte %d", u, v, u)
				return
			}
			nv := make([]byte, valueSize)
			nv[0] = byte(u + 100)
			if err := users.Write(key, nv); err != nil {
				t.Errorf("user %d write: %v", u, err)
				return
			}
			v, err = users.Read(key)
			if err != nil {
				t.Errorf("user %d reread: %v", u, err)
				return
			}
			if !bytes.Equal(v, nv) {
				t.Errorf("user %d reread %v, want %v", u, v, nv)
			}
		}(u)
	}
	wg.Wait()
}

// TestServeProxyAggregationRequiresLBL pins the configuration error:
// aggregation coalesces into MsgLBLAccessBatch frames, which only the
// LBL protocol has.
func TestServeProxyAggregationRequiresLBL(t *testing.T) {
	server, err := NewServer(ServerConfig{Protocol: ProtocolBaseline2RTT, ValueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	link := netsim.Listen(netsim.Loopback)
	go server.Serve(link)
	client, err := NewClient(ClientConfig{Protocol: ProtocolBaseline2RTT, ValueSize: 8, Keys: GenerateKeys()},
		func() (net.Conn, error) { return link.Dial() })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	err = client.ServeProxyOptions(netsim.Listen(netsim.Loopback), ProxyServeOptions{AggWindow: time.Millisecond})
	if err == nil {
		t.Fatal("aggregated ServeProxy under 2RTT succeeded, want error")
	}
}

// TestConcurrentSaveState is the regression test for the racing-save
// bug: WriteFileAtomic's temp name is deterministic, so unserialized
// concurrent saves of one path (periodic saver vs shutdown save)
// corrupted or lost snapshots. All concurrent saves must succeed and
// leave a loadable snapshot.
func TestConcurrentSaveState(t *testing.T) {
	client, _ := newProxyDeployment(t, 8, 8, netsim.Loopback)
	// Advance some counters so the snapshot has content.
	for i := 0; i < 8; i++ {
		if _, err := client.Read(fmt.Sprintf("key-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}

	path := t.TempDir() + "/counters.state"
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := client.SaveState(path); err != nil {
					t.Errorf("concurrent save: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if err := client.LoadState(path); err != nil {
		t.Fatalf("snapshot unreadable after concurrent saves: %v", err)
	}
	if v, err := client.Read("key-003"); err != nil || v[0] != 3 {
		t.Fatalf("read after reload = %v, %v", v, err)
	}
}
