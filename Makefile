GO ?= go

.PHONY: build test vet race verify bench bench-batch experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full test suite under the race detector; the batched
# pipeline tests exercise concurrent AccessBatch/Access interleavings,
# parallel per-shard batch fan-out, and server shutdown draining.
race:
	$(GO) test -race ./...

# verify is the CI gate: static checks plus the race-checked suite.
verify: vet race

bench:
	$(GO) test -bench . -benchtime 1x ./...

# bench-batch compares the one-frame batch pipeline against the
# concurrent single-access fallback over a simulated WAN link.
bench-batch:
	$(GO) test -run XXX -bench 'Batch64' -benchtime 10x .

experiments:
	$(GO) run ./cmd/ortoa-bench -quick
