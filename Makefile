GO ?= go

.PHONY: build test vet race verify bench bench-batch crash experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full test suite under the race detector; the batched
# pipeline tests exercise concurrent AccessBatch/Access interleavings,
# parallel per-shard batch fan-out, and server shutdown draining.
race:
	$(GO) test -race ./...

# verify is the fast CI gate: static checks plus the plain test suite.
# The race-checked suite runs as its own CI job (make race) so a data
# race and a logic failure are reported separately.
verify: vet test

bench:
	$(GO) test -bench . -benchtime 1x ./...

# bench-batch compares the one-frame batch pipeline against the
# concurrent single-access fallback over a simulated WAN link.
bench-batch:
	$(GO) test -run XXX -bench 'Batch64' -benchtime 10x .

# crash runs the kill/restart durability experiment at full scale:
# 50 seeded crash/recovery cycles under the group-commit WAL, the
# SyncNever rollback/reconciliation phase, and the never-vs-group-
# commit throughput bound (DESIGN.md §10). The experiment self-audits;
# a zero exit is the assertion.
crash:
	$(GO) run ./cmd/ortoa-bench -experiment crash

experiments:
	$(GO) run ./cmd/ortoa-bench -quick
