GO ?= go

.PHONY: build test vet race verify bench bench-batch bench-json bench-smoke trace-smoke aggregate-smoke failover-smoke overload-smoke stream-smoke crash experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full test suite under the race detector; the batched
# pipeline tests exercise concurrent AccessBatch/Access interleavings,
# parallel per-shard batch fan-out, and server shutdown draining.
race:
	$(GO) test -race ./...

# verify is the fast CI gate: static checks plus the plain test suite.
# The race-checked suite runs as its own CI job (make race) so a data
# race and a logic failure are reported separately.
verify: vet test

bench:
	$(GO) test -bench . -benchtime 1x ./...

# bench-batch compares the one-frame batch pipeline against the
# concurrent single-access fallback over a simulated WAN link.
bench-batch:
	$(GO) test -run XXX -bench 'Batch64' -benchtime 10x .

# bench-json regenerates the machine-readable perf baseline: the LBL
# table-build and recover kernels at 1 KiB values across 1/4/8 workers,
# with ops/s, p50/p99, and allocation counts. Run on the target
# hardware — the report records cpus_available, and the multicore
# speedup claim only holds where the cores exist.
bench-json:
	$(GO) run ./cmd/ortoa-bench -experiment bench -bench-out BENCH_5.json

# bench-smoke is the CI benchmark gate: one short pass over the kernel
# and hot-path benchmarks, checking they still run, plus a full-shape
# bench run gated against the checked-in BENCH_5.json baseline: the
# experiment fails on a >25% ops/s drop. The gate only arms when this
# host matches the baseline's recorded value size and CPU count (so a
# differently-sized CI runner skips the comparison with a note instead
# of failing on hardware differences).
bench-smoke:
	$(GO) test -run XXX -bench 'Kernel1KiB|LBLBuildRequest|SealLabel|OpenLabel' -benchtime 5x ./internal/core/ ./internal/crypto/secretbox/
	$(GO) run ./cmd/ortoa-bench -experiment bench -bench-baseline BENCH_5.json

# trace-smoke runs the one-trace Fig 3c experiment: a traced LBL
# workload must yield a complete cross-process span tree whose stage
# spans sum to the end-to-end span within 1%, with zero obliviousness
# shape violations while tracing is on (DESIGN.md §13). The experiment
# self-audits; a zero exit is the assertion.
trace-smoke:
	$(GO) run ./cmd/ortoa-bench -experiment trace -quick

# aggregate-smoke runs the cross-session aggregation experiment in
# quick mode: 64 single-key sessions through the coalescing window vs
# the per-request path over a simulated London link (DESIGN.md §12).
aggregate-smoke:
	$(GO) run ./cmd/ortoa-bench -experiment aggregate -quick

# failover-smoke runs the multi-proxy high-availability experiment in
# quick mode: proxy-count scaling plus the kill-and-adopt drill — one
# proxy is crash-killed mid-workload, survivors adopt its counter
# ranges through the epoch fence, and the experiment self-audits that
# no acknowledged write was lost and no obliviousness shape violation
# occurred (DESIGN.md §14). A zero exit is the assertion.
failover-smoke:
	$(GO) run ./cmd/ortoa-bench -experiment failover -quick

# overload-smoke runs the overload-shedding experiment in quick mode:
# an admission-limited 2-proxy cluster is offered 10x its provisioned
# concurrency, and the experiment self-audits that goodput stays >=70%
# of measured capacity, accepted-request p99 stays bounded, no
# acknowledged write is lost, and the shape auditor records zero
# length violations — shedding is operation-type invisible
# (DESIGN.md §15). A zero exit is the assertion.
overload-smoke:
	$(GO) run ./cmd/ortoa-bench -experiment overload -quick

# stream-smoke runs the chunk-streaming experiment in quick mode:
# monolithic vs streamed access requests over a link calibrated so one
# table costs about one build time on the wire. The experiment
# self-audits — it fails unless streaming beats monolithic by the gate
# factor, every streamed request frame stays within the chunk budget,
# the mid-stream fault drill loses no acknowledged write, and the
# shape auditors record zero length violations (DESIGN.md §16). A zero
# exit is the assertion.
stream-smoke:
	$(GO) run ./cmd/ortoa-bench -experiment stream -quick

# crash runs the kill/restart durability experiment at full scale:
# 50 seeded crash/recovery cycles under the group-commit WAL, the
# SyncNever rollback/reconciliation phase, and the never-vs-group-
# commit throughput bound (DESIGN.md §10). The experiment self-audits;
# a zero exit is the assertion.
crash:
	$(GO) run ./cmd/ortoa-bench -experiment crash

experiments:
	$(GO) run ./cmd/ortoa-bench -quick
