// Command ortoa-proxy runs the trusted side of an ORTOA deployment:
// it holds the secret keys (and, for LBL, the per-key access
// counters), connects to the untrusted ortoa-server, and serves
// oblivious accesses to end-user clients (§2.1's proxy model).
//
// Usage:
//
//	ortoa-proxy -server localhost:7001 -listen :7002 \
//	    -protocol lbl -value-size 160 -keys keys.json \
//	    -load-synthetic 10000
//
// Keys are created on first run and reused afterwards.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ortoa"
	"ortoa/internal/core"
	"ortoa/internal/obs"
	"ortoa/internal/workload"
)

func main() {
	log.SetPrefix("ortoa-proxy: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	serverAddr := flag.String("server", "localhost:7001", "ortoa-server address")
	listen := flag.String("listen", ":7002", "address to serve clients on")
	protocol := flag.String("protocol", "lbl", "protocol: lbl, tee, fhe, or 2rtt")
	valueSize := flag.Int("value-size", 160, "fixed value size in bytes")
	keysPath := flag.String("keys", "ortoa-keys.json", "keys file (created if missing)")
	variant := flag.String("lbl-variant", "point-permute", "LBL variant: basic, space-opt, point-permute")
	conns := flag.Int("conns", 32, "connection pool size to the server")
	callTimeout := flag.Duration("call-timeout", 0, "per-attempt deadline for server RPCs, e.g. 500ms (0 disables)")
	retries := flag.Int("retries", 0, "total attempts per server RPC; at-most-once retries (<2 disables)")
	loadSynthetic := flag.Int("load-synthetic", 0, "bulk-load N synthetic records at startup")
	statePath := flag.String("state", "", "LBL access-counter state file (restored at startup, saved on shutdown)")
	stateEvery := flag.Duration("state-interval", 0, "also save -state crash-atomically this often, bounding the counter-loss window (0 disables)")
	aggWindow := flag.Duration("agg-window", 0, "coalesce concurrent client accesses into shared batch round trips, waiting at most this long per window (LBL; 0 disables)")
	aggMaxBatch := flag.Int("agg-max-batch", 0, "dispatch an aggregation window early at this many accesses (0 = default 64)")
	aggMaxPending := flag.Int("agg-max-pending", 0, "reject client accesses beyond this many admitted-but-unanswered (0 = default 4x max-batch)")
	aggBrownoutPending := flag.Int("agg-brownout-pending", 0, "pending depth at which aggregation browns out: bigger batches, quarter-length windows (0 = default half of agg-max-pending)")
	aggBrownoutMaxBatch := flag.Int("agg-brownout-max-batch", 0, "aggregation window size trigger under brownout (0 = default 2x agg-max-batch)")
	maxInflight := flag.Int("max-inflight", 0, "handle at most this many client requests concurrently, shedding overload with constant-size busy frames (0 disables admission control)")
	maxQueue := flag.Int("max-queue", 0, "client requests waiting for an inflight slot before overflow is shed, served newest-first (needs -max-inflight)")
	shedDeadline := flag.Bool("shed-deadline", true, "drop client requests whose deadline budget expired before doing any work (needs -max-inflight)")
	retryAfter := flag.Duration("retry-after", 0, "backoff hint carried in busy rejections (0 = default 25ms)")
	reconcileScan := flag.Int("reconcile-scan", 0, "probe up to N counter steps to reconcile after crash desync, e.g. when resuming from a stale -state snapshot (LBL; 0 disables)")
	streamChunk := flag.Int("stream-chunk", 0, "stream each access table to the server in sealed chunks of about this many bytes as they are built, pipelining garbling against the WAN (LBL; 0 keeps one-frame requests)")
	peers := flag.String("peers", "", "comma-separated names of every proxy in a multi-proxy deployment, e.g. host1:7002,host2:7002 (LBL; claims this proxy's ring share of counter ranges and enables adoption on fence; requires -self)")
	self := flag.String("self", "", "this proxy's name within -peers (clients' -proxies member names must match for first-try owner routing)")
	ranges := flag.String("ranges", "", "comma-separated counter range ids to claim explicitly instead of ring placement, e.g. 0,5,9 (LBL; enables adoption on fence)")
	fheDegree := flag.Int("fhe-degree", 512, "BFV ring degree (fhe)")
	fheBits := flag.Int("fhe-modulus-bits", 370, "BFV modulus bits (fhe)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /slowlog, /trace, and /debug/pprof on this address (e.g. :7092)")
	traceBuffer := flag.Int("trace-buffer", 4096, "retain this many finished trace spans for /trace; 0 disables tracing (needs -metrics-addr)")
	flag.Parse()

	keys, err := ortoa.LoadOrGenerateKeys(*keysPath)
	if err != nil {
		log.Fatal(err)
	}

	multiProxy := *peers != "" || *ranges != ""
	if multiProxy && ortoa.Protocol(*protocol) != ortoa.ProtocolLBL {
		log.Fatal("-peers/-ranges (multi-proxy range ownership) require -protocol lbl")
	}
	if *peers != "" && *self == "" {
		log.Fatal("-peers requires -self (this proxy's name within the peer list)")
	}
	if multiProxy && *reconcileScan <= 0 {
		// An adopter rebases a dead peer's counters through the
		// reconcile spiral; without a scan bound adoption would fence
		// the ex-owner but never recover the counter positions.
		*reconcileScan = 4096
		log.Printf("multi-proxy deployment: defaulting -reconcile-scan to %d", *reconcileScan)
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		admin, err := obs.ServeAdmin(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer admin.Close()
		log.Printf("metrics on http://%s/metrics", admin.Addr)
	}

	client, err := ortoa.NewClient(ortoa.ClientConfig{
		Protocol:      ortoa.Protocol(*protocol),
		ValueSize:     *valueSize,
		Keys:          keys,
		LBLVariant:    ortoa.LBLVariant(*variant),
		Conns:         *conns,
		CallTimeout:   *callTimeout,
		RetryAttempts: *retries,
		ReconcileScan: *reconcileScan,
		AutoAdopt:     multiProxy,
		StreamChunk:   *streamChunk,
		FHE:           ortoa.FHEOptions{RingDegree: *fheDegree, ModulusBits: *fheBits},
		Metrics:       reg,
		TraceBuffer:   *traceBuffer,
	}, func() (net.Conn, error) { return net.Dial("tcp", *serverAddr) })
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if ortoa.Protocol(*protocol) == ortoa.ProtocolTEE {
		if err := client.Provision(); err != nil {
			log.Fatalf("attesting server enclave: %v", err)
		}
		log.Print("enclave attested and provisioned")
	}
	if ortoa.Protocol(*protocol) == ortoa.ProtocolFHE && len(keys.FHESecretKey) == 0 {
		keys.FHESecretKey = client.FHESecretKey()
		if err := keys.Save(*keysPath); err != nil {
			log.Fatalf("persisting FHE secret key: %v", err)
		}
	}

	if *statePath != "" {
		if _, err := os.Stat(*statePath); err == nil {
			if err := client.LoadState(*statePath); err != nil {
				log.Fatalf("restoring counter state: %v", err)
			}
			log.Printf("restored LBL counters from %s", *statePath)
		}
	}

	// Claim range ownership after any counter restore: from the claim
	// on, every in-flight or retried round from a previous owner of
	// these ranges is fenced at the server before it can touch a
	// record, and this proxy's stale counter positions rebase through
	// -reconcile-scan on first access.
	switch {
	case *ranges != "":
		var rids []uint32
		for _, f := range strings.Split(*ranges, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			id, err := strconv.ParseUint(f, 10, 32)
			if err != nil || id >= ortoa.NumCounterRanges {
				log.Fatalf("-ranges: %q is not a range id in [0,%d)", f, ortoa.NumCounterRanges)
			}
			rids = append(rids, uint32(id))
		}
		if err := client.ClaimRanges(rids); err != nil {
			log.Fatalf("claiming ranges: %v", err)
		}
		log.Printf("claimed %d explicit counter ranges", len(rids))
	case *peers != "":
		var names []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				names = append(names, p)
			}
		}
		rids, err := client.ClaimOwnedRanges(names, *self)
		if err != nil {
			log.Fatalf("claiming owned ranges: %v", err)
		}
		log.Printf("claimed %d/%d counter ranges as %q (ring of %d proxies)",
			len(rids), ortoa.NumCounterRanges, *self, len(names))
	}

	if *loadSynthetic > 0 {
		data := workload.InitialData(workload.Config{
			NumKeys: *loadSynthetic, ValueSize: *valueSize, Seed: 1,
		})
		if err := client.Load(data); err != nil {
			log.Fatalf("bulk load: %v", err)
		}
		log.Printf("loaded %d synthetic records (keys key-00000000..key-%08d)", *loadSynthetic, *loadSynthetic-1)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("proxying protocol=%s server=%s on %s", *protocol, *serverAddr, l.Addr())
	if *aggWindow > 0 {
		maxBatch := *aggMaxBatch
		if maxBatch <= 0 {
			maxBatch = core.DefaultAggMaxBatch
		}
		log.Printf("aggregating client accesses: window=%s max-batch=%d", *aggWindow, maxBatch)
	}
	if *maxInflight > 0 {
		log.Printf("admission control: max-inflight=%d max-queue=%d shed-deadline=%v", *maxInflight, *maxQueue, *shedDeadline)
	}

	stopSaver := make(chan struct{})
	if *statePath != "" && *stateEvery > 0 {
		// Periodic crash-atomic saves bound the counter state lost to a
		// proxy crash to one interval; -reconcile-scan closes the
		// remaining gap on restart. The ticker is stopped on shutdown;
		// SaveState itself serializes against the final shutdown save.
		ticker := time.NewTicker(*stateEvery)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := client.SaveState(*statePath); err != nil {
						log.Printf("saving counter state: %v", err)
					}
				case <-stopSaver:
					return
				}
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- client.ServeProxyOptions(l, ortoa.ProxyServeOptions{
			AggWindow:           *aggWindow,
			AggMaxBatch:         *aggMaxBatch,
			AggMaxPending:       *aggMaxPending,
			AggBrownoutPending:  *aggBrownoutPending,
			AggBrownoutMaxBatch: *aggBrownoutMaxBatch,
			Admission: ortoa.AdmissionOptions{
				MaxInflight:  *maxInflight,
				MaxQueue:     *maxQueue,
				ShedDeadline: *shedDeadline,
				RetryAfter:   *retryAfter,
			},
		})
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %s; draining", s)
	case err := <-serveErr:
		log.Printf("proxy stopped: %v", err)
	}
	close(stopSaver)

	// Graceful shutdown: Close stops the listener, drains accepted
	// client connections (in-flight accesses complete) and flushes
	// aggregation windows before releasing the server connections —
	// only then is the final counter snapshot taken, so it reflects
	// every acknowledged access. Returning (not os.Exit) lets the
	// deferred admin.Close run.
	if err := client.Close(); err != nil {
		log.Printf("closing client: %v", err)
	}
	if *statePath != "" {
		if err := client.SaveState(*statePath); err != nil {
			log.Printf("saving counter state: %v", err)
		} else {
			log.Printf("saved LBL counters to %s", *statePath)
		}
	}
}
