// Command ortoa-bench regenerates the paper's evaluation: every table
// and figure of §6, the §3.3 FHE noise experiment, the §6.3.3 cost
// model, and the appendix Figure 6 analysis, over in-process clusters
// with simulated WAN links (Table 2 RTTs).
//
// Usage:
//
//	ortoa-bench -list
//	ortoa-bench -experiment fig2a
//	ortoa-bench -experiment all -quick
//	ortoa-bench -experiment all -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime/debug"
	"time"

	"ortoa/internal/harness"
)

func main() {
	log.SetPrefix("ortoa-bench: ")
	log.SetFlags(0)
	// Latency experiments are GC-sensitive: LBL requests are ~64 KiB
	// each and the default GC target makes large-database runs pay
	// collection pauses the paper's dedicated servers would not see.
	debug.SetGCPercent(400)

	experiment := flag.String("experiment", "all", "experiment id, or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	quick := flag.Bool("quick", false, "minimal sizes (smoke run)")
	keys := flag.Int("keys", 0, "override database size")
	ops := flag.Int("ops", 0, "override operations per client")
	concurrency := flag.Int("concurrency", 0, "override client thread count")
	out := flag.String("out", "", "also write results to this file")
	format := flag.String("format", "text", "output format: text, csv, markdown")
	benchOut := flag.String("bench-out", "", "write the 'bench' experiment's JSON report to this file")
	benchBaseline := flag.String("bench-baseline", "", "compare the 'bench' experiment against this prior JSON report; fail on >25% ops/s regression (skipped when value size or CPU count differ)")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments {
			fmt.Printf("%-14s %s\n", e.ID, e.Description)
		}
		return
	}

	opt := harness.Options{Quick: *quick, Keys: *keys, Ops: *ops, Concurrency: *concurrency,
		BenchOut: *benchOut, BenchBaseline: *benchBaseline}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	run := func(e harness.Experiment) {
		log.Printf("running %s (%s)...", e.ID, e.Description)
		start := time.Now()
		table, err := e.Run(opt)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		if err := table.RenderAs(w, *format); err != nil {
			log.Fatal(err)
		}
		log.Printf("%s done in %v", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, e := range harness.Experiments {
			run(e)
		}
		return
	}
	e, err := harness.Lookup(*experiment)
	if err != nil {
		log.Fatal(err)
	}
	run(e)
}
