// Command ortoa-server runs the untrusted ORTOA storage server: the
// record store plus the access handlers of one protocol. It learns
// neither plaintext values nor operation types.
//
// Usage:
//
//	ortoa-server -listen :7001 -protocol lbl -value-size 160
//
// With -snapshot, the store is restored at startup (if the file
// exists) and saved on SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ortoa"
	"ortoa/internal/obs"
)

func main() {
	log.SetPrefix("ortoa-server: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	listen := flag.String("listen", ":7001", "address to listen on")
	protocol := flag.String("protocol", "lbl", "protocol: lbl, tee, fhe, or 2rtt")
	valueSize := flag.Int("value-size", 160, "fixed value size in bytes")
	snapshot := flag.String("snapshot", "", "snapshot file to restore/save the store")
	walPath := flag.String("wal", "", "write-ahead log for crash durability (replayed at startup)")
	walSyncEvery := flag.Duration("wal-sync", 2*time.Second, "WAL fsync interval")
	enclaveCost := flag.Duration("enclave-cost", 0, "simulated per-ecall enclave transition cost (tee)")
	fheDegree := flag.Int("fhe-degree", 512, "BFV ring degree (fhe)")
	fheBits := flag.Int("fhe-modulus-bits", 370, "BFV modulus bits (fhe)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /slowlog, and /debug/pprof on this address (e.g. :7091)")
	flag.Parse()

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		admin, err := obs.ServeAdmin(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer admin.Close()
		log.Printf("metrics on http://%s/metrics", admin.Addr)
	}

	server, err := ortoa.NewServer(ortoa.ServerConfig{
		Protocol:          ortoa.Protocol(*protocol),
		ValueSize:         *valueSize,
		EnclaveTransition: *enclaveCost,
		FHE:               ortoa.FHEOptions{RingDegree: *fheDegree, ModulusBits: *fheBits},
		Metrics:           reg,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *snapshot != "" {
		if _, err := os.Stat(*snapshot); err == nil {
			if err := server.LoadSnapshot(*snapshot); err != nil {
				log.Fatalf("restoring snapshot: %v", err)
			}
			log.Printf("restored %d records from %s", server.Records(), *snapshot)
		}
	}
	if *walPath != "" {
		if err := server.AttachWAL(*walPath); err != nil {
			log.Fatalf("attaching WAL: %v", err)
		}
		log.Printf("WAL attached at %s (%d records after replay)", *walPath, server.Records())
		go func() {
			for range time.Tick(*walSyncEvery) {
				if err := server.SyncWAL(); err != nil {
					log.Printf("WAL sync: %v", err)
				}
			}
		}()
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving protocol=%s value-size=%d on %s", *protocol, *valueSize, l.Addr())

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		if *snapshot != "" {
			if err := server.SaveSnapshot(*snapshot); err != nil {
				log.Printf("saving snapshot: %v", err)
			} else {
				log.Printf("saved %d records to %s", server.Records(), *snapshot)
			}
		}
		if *walPath != "" {
			if err := server.DetachWAL(); err != nil {
				log.Printf("closing WAL: %v", err)
			}
		}
		server.Close()
		l.Close()
	}()

	// Periodic stats for operators.
	go func() {
		for range time.Tick(30 * time.Second) {
			fmt.Printf("records=%d storage=%dB\n", server.Records(), server.StorageBytes())
		}
	}()

	if err := server.Serve(l); err != nil {
		log.Printf("server stopped: %v", err)
	}
}
