// Command ortoa-server runs the untrusted ORTOA storage server: the
// record store plus the access handlers of one protocol. It learns
// neither plaintext values nor operation types.
//
// Usage:
//
//	ortoa-server -listen :7001 -protocol lbl -value-size 160
//
// With -snapshot, the store is restored at startup (if the file
// exists) and saved on SIGINT/SIGTERM. With -wal, every mutation is
// journaled under the -fsync policy (group-commit = durable-on-ack);
// adding -checkpoint-interval turns -wal into a state directory with
// background checkpoints bounding recovery replay time.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ortoa"
	"ortoa/internal/obs"
)

func main() {
	log.SetPrefix("ortoa-server: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	listen := flag.String("listen", ":7001", "address to listen on")
	protocol := flag.String("protocol", "lbl", "protocol: lbl, tee, fhe, or 2rtt")
	valueSize := flag.Int("value-size", 160, "fixed value size in bytes")
	snapshot := flag.String("snapshot", "", "snapshot file to restore/save the store")
	walPath := flag.String("wal", "", "write-ahead log for crash durability (replayed at startup); with -checkpoint-interval this names a state directory instead")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: never, interval, or group-commit (durable-on-ack)")
	walSyncEvery := flag.Duration("wal-sync", 2*time.Second, "fsync cadence for -fsync interval")
	checkpointInterval := flag.Duration("checkpoint-interval", 0, "run background checkpoints (snapshot + WAL rotation) this often; turns -wal into a state directory (0 disables)")
	enclaveCost := flag.Duration("enclave-cost", 0, "simulated per-ecall enclave transition cost (tee)")
	fheDegree := flag.Int("fhe-degree", 512, "BFV ring degree (fhe)")
	fheBits := flag.Int("fhe-modulus-bits", 370, "BFV modulus bits (fhe)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /slowlog, /trace, and /debug/pprof on this address (e.g. :7091)")
	traceBuffer := flag.Int("trace-buffer", 4096, "retain this many finished trace spans for /trace; 0 disables tracing (needs -metrics-addr)")
	maxInflight := flag.Int("max-inflight", 0, "handle at most this many requests concurrently, shedding overload with constant-size busy frames (0 disables admission control)")
	maxQueue := flag.Int("max-queue", 0, "requests waiting for an inflight slot before overflow is shed, served newest-first (needs -max-inflight)")
	shedDeadline := flag.Bool("shed-deadline", true, "drop requests whose propagated deadline budget expired before doing any work (needs -max-inflight)")
	retryAfter := flag.Duration("retry-after", 0, "backoff hint carried in busy rejections (0 = default 25ms)")
	flag.Parse()

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		admin, err := obs.ServeAdmin(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer admin.Close()
		log.Printf("metrics on http://%s/metrics", admin.Addr)
	}

	server, err := ortoa.NewServer(ortoa.ServerConfig{
		Protocol:          ortoa.Protocol(*protocol),
		ValueSize:         *valueSize,
		EnclaveTransition: *enclaveCost,
		FHE:               ortoa.FHEOptions{RingDegree: *fheDegree, ModulusBits: *fheBits},
		Metrics:           reg,
		TraceBuffer:       *traceBuffer,
		Admission: ortoa.AdmissionOptions{
			MaxInflight:  *maxInflight,
			MaxQueue:     *maxQueue,
			ShedDeadline: *shedDeadline,
			RetryAfter:   *retryAfter,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if *maxInflight > 0 {
		log.Printf("admission control: max-inflight=%d max-queue=%d shed-deadline=%v", *maxInflight, *maxQueue, *shedDeadline)
	}

	if *snapshot != "" {
		if _, err := os.Stat(*snapshot); err == nil {
			if err := server.LoadSnapshot(*snapshot); err != nil {
				log.Fatalf("restoring snapshot: %v", err)
			}
			log.Printf("restored %d records from %s", server.Records(), *snapshot)
		}
	}
	switch {
	case *checkpointInterval > 0:
		// Generation-based state: -wal names a directory holding
		// MANIFEST + snap-<gen> + wal-<gen>; recovery loads the newest
		// consistent pair and checkpoints bound replay time.
		if *walPath == "" {
			log.Fatal("-checkpoint-interval requires -wal (the state directory)")
		}
		if err := server.OpenState(*walPath, ortoa.DurabilityOptions{
			Fsync:              ortoa.FsyncPolicy(*fsync),
			SyncInterval:       *walSyncEvery,
			CheckpointInterval: *checkpointInterval,
		}); err != nil {
			log.Fatalf("opening state directory: %v", err)
		}
		log.Printf("state recovered from %s (generation %d, %d records, fsync=%s, checkpoints every %s)",
			*walPath, server.Generation(), server.Records(), *fsync, *checkpointInterval)
	case *walPath != "":
		if err := server.AttachWALPolicy(*walPath, ortoa.FsyncPolicy(*fsync), *walSyncEvery); err != nil {
			log.Fatalf("attaching WAL: %v", err)
		}
		log.Printf("WAL attached at %s (%d records after replay, fsync=%s)", *walPath, server.Records(), *fsync)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving protocol=%s value-size=%d on %s", *protocol, *valueSize, l.Addr())

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		if *snapshot != "" {
			if err := server.SaveSnapshot(*snapshot); err != nil {
				log.Printf("saving snapshot: %v", err)
			} else {
				log.Printf("saved %d records to %s", server.Records(), *snapshot)
			}
		}
		if *walPath != "" {
			if err := server.DetachWAL(); err != nil {
				log.Printf("closing WAL: %v", err)
			}
		}
		server.Close()
		l.Close()
	}()

	// Periodic stats for operators.
	go func() {
		for range time.Tick(30 * time.Second) {
			fmt.Printf("records=%d storage=%dB\n", server.Records(), server.StorageBytes())
		}
	}()

	if err := server.Serve(l); err != nil {
		log.Printf("server stopped: %v", err)
	}
}
