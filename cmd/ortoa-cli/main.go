// Command ortoa-cli is an end-user client for an ORTOA deployment: it
// routes GET/PUT requests through a trusted ortoa-proxy. It holds no
// secrets.
//
// Usage:
//
//	ortoa-cli -proxy localhost:7002 get key-00000007
//	ortoa-cli -proxy localhost:7002 put key-00000007 'new value'
//	ortoa-cli -proxy localhost:7002 -value-size 160 bench -ops 100 -clients 8 -keys 1000
//
// Against a multi-proxy deployment, pass every proxy instead: requests
// route to the proxy owning each key's counter range and fail over to
// the surviving peers when one dies mid-command:
//
//	ortoa-cli -proxies host1:7002,host2:7002,host3:7002 get key-00000007
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"ortoa"
	"ortoa/internal/stats"
	"ortoa/internal/workload"
)

// A store is what both proxy handles (single ortoa.ProxyClient,
// failover ortoa.ProxyGroup) expose to the commands below.
type store interface {
	Read(key string) ([]byte, error)
	Write(key string, value []byte) error
	Close() error
}

func main() {
	log.SetPrefix("ortoa-cli: ")
	log.SetFlags(0)

	proxyAddr := flag.String("proxy", "localhost:7002", "ortoa-proxy address")
	proxyList := flag.String("proxies", "", "comma-separated addresses of every proxy in a multi-proxy deployment (overrides -proxy; routes to range owners, fails over on proxy death; names must match the proxies' -peers list)")
	valueSize := flag.Int("value-size", 160, "store's fixed value size (put pads; bench generates)")
	callTimeout := flag.Duration("call-timeout", 2*time.Second, "per-attempt deadline with -proxies, so a dead proxy costs a failover instead of a hang (0 disables)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("usage: ortoa-cli [flags] get KEY | put KEY VALUE | bench [bench flags]")
	}

	// connect dials either the one proxy or the failover group.
	connect := func(conns int) (store, error) {
		if *proxyList == "" {
			dial := func() (net.Conn, error) { return net.Dial("tcp", *proxyAddr) }
			return ortoa.DialProxy(dial, conns)
		}
		var members []ortoa.ProxyGroupMember
		for _, a := range strings.Split(*proxyList, ",") {
			addr := strings.TrimSpace(a)
			if addr == "" {
				continue
			}
			members = append(members, ortoa.ProxyGroupMember{
				Name: addr,
				Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
			})
		}
		return ortoa.DialProxyGroup(members, ortoa.ProxyGroupOptions{
			Conns:       conns,
			CallTimeout: *callTimeout,
		})
	}

	switch args[0] {
	case "get":
		if len(args) != 2 {
			log.Fatal("usage: get KEY")
		}
		client, err := connect(1)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		v, err := client.Read(args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%q\n", v)
	case "put":
		if len(args) != 3 {
			log.Fatal("usage: put KEY VALUE")
		}
		client, err := connect(1)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		value := make([]byte, *valueSize)
		if copy(value, args[2]) < len(args[2]) {
			log.Fatalf("value exceeds fixed size %d", *valueSize)
		}
		if err := client.Write(args[1], value); err != nil {
			if ortoa.Ambiguous(err) {
				log.Fatalf("outcome unknown (write may have applied; rewriting is safe): %v", err)
			}
			log.Fatal(err)
		}
		fmt.Println("ok")
	case "bench":
		benchCmd(connect, *valueSize, args[1:])
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

// benchCmd drives a closed-loop random workload through the proxy (or
// proxy group) and prints latency/throughput, mirroring the paper's
// measurement loop.
func benchCmd(connect func(conns int) (store, error), valueSize int, args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	ops := fs.Int("ops", 100, "operations per client")
	clients := fs.Int("clients", 8, "concurrent closed-loop clients")
	keys := fs.Int("keys", 1000, "key space (key-00000000..)")
	writeFrac := fs.Float64("write-fraction", 0.5, "fraction of writes")
	fs.Parse(args)

	client, err := connect(*clients)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	rec := stats.NewRecorder(*ops * *clients)
	var wg sync.WaitGroup
	var mu sync.Mutex
	errCount := 0
	start := time.Now()
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), uint64(time.Now().UnixNano())))
			for i := 0; i < *ops; i++ {
				key := workload.Key(rng.IntN(*keys))
				var err error
				opStart := time.Now()
				if rng.Float64() < *writeFrac {
					value := make([]byte, valueSize)
					for j := range value {
						value[j] = byte(rng.Uint32())
					}
					err = client.Write(key, value)
				} else {
					_, err = client.Read(key)
				}
				rec.Add(time.Since(opStart))
				if err != nil {
					mu.Lock()
					errCount++
					if errCount == 1 {
						log.Printf("first error: %v", err)
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := *ops * *clients
	fmt.Printf("ops=%d errors=%d elapsed=%v throughput=%.0f ops/s\n",
		total, errCount, elapsed.Round(time.Millisecond), stats.Throughput(total, elapsed))
	fmt.Printf("latency: %v\n", rec.Summarize())
	if errCount > 0 {
		os.Exit(1)
	}
}
