// Command ortoa-cli is an end-user client for an ORTOA deployment: it
// routes GET/PUT requests through a trusted ortoa-proxy. It holds no
// secrets.
//
// Usage:
//
//	ortoa-cli -proxy localhost:7002 get key-00000007
//	ortoa-cli -proxy localhost:7002 put key-00000007 'new value'
//	ortoa-cli -proxy localhost:7002 -value-size 160 bench -ops 100 -clients 8 -keys 1000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"os"
	"sync"
	"time"

	"ortoa"
	"ortoa/internal/stats"
	"ortoa/internal/workload"
)

func main() {
	log.SetPrefix("ortoa-cli: ")
	log.SetFlags(0)

	proxyAddr := flag.String("proxy", "localhost:7002", "ortoa-proxy address")
	valueSize := flag.Int("value-size", 160, "store's fixed value size (put pads; bench generates)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("usage: ortoa-cli [flags] get KEY | put KEY VALUE | bench [bench flags]")
	}

	dial := func() (net.Conn, error) { return net.Dial("tcp", *proxyAddr) }

	switch args[0] {
	case "get":
		if len(args) != 2 {
			log.Fatal("usage: get KEY")
		}
		client, err := ortoa.DialProxy(dial, 1)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		v, err := client.Read(args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%q\n", v)
	case "put":
		if len(args) != 3 {
			log.Fatal("usage: put KEY VALUE")
		}
		client, err := ortoa.DialProxy(dial, 1)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		value := make([]byte, *valueSize)
		if copy(value, args[2]) < len(args[2]) {
			log.Fatalf("value exceeds fixed size %d", *valueSize)
		}
		if err := client.Write(args[1], value); err != nil {
			log.Fatal(err)
		}
		fmt.Println("ok")
	case "bench":
		benchCmd(dial, *valueSize, args[1:])
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

// benchCmd drives a closed-loop random workload through the proxy and
// prints latency/throughput, mirroring the paper's measurement loop.
func benchCmd(dial func() (net.Conn, error), valueSize int, args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	ops := fs.Int("ops", 100, "operations per client")
	clients := fs.Int("clients", 8, "concurrent closed-loop clients")
	keys := fs.Int("keys", 1000, "key space (key-00000000..)")
	writeFrac := fs.Float64("write-fraction", 0.5, "fraction of writes")
	fs.Parse(args)

	client, err := ortoa.DialProxy(dial, *clients)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	rec := stats.NewRecorder(*ops * *clients)
	var wg sync.WaitGroup
	var mu sync.Mutex
	errCount := 0
	start := time.Now()
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), uint64(time.Now().UnixNano())))
			for i := 0; i < *ops; i++ {
				key := workload.Key(rng.IntN(*keys))
				var err error
				opStart := time.Now()
				if rng.Float64() < *writeFrac {
					value := make([]byte, valueSize)
					for j := range value {
						value[j] = byte(rng.Uint32())
					}
					err = client.Write(key, value)
				} else {
					_, err = client.Read(key)
				}
				rec.Add(time.Since(opStart))
				if err != nil {
					mu.Lock()
					errCount++
					if errCount == 1 {
						log.Printf("first error: %v", err)
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := *ops * *clients
	fmt.Printf("ops=%d errors=%d elapsed=%v throughput=%.0f ops/s\n",
		total, errCount, elapsed.Round(time.Millisecond), stats.Throughput(total, elapsed))
	fmt.Printf("latency: %v\n", rec.Summarize())
	if errCount > 0 {
		os.Exit(1)
	}
}
