package ortoa

import (
	"fmt"
	"hash/fnv"
)

// A ShardedClient hash-partitions keys across multiple independent
// deployments (proxy/server pairs), the scaling strategy of §6.2.4:
// "the system can scale the number of proxies without compromising
// security", since ORTOA hides operation types, not which shard a key
// lives on.
type ShardedClient struct {
	shards []*Client
}

// NewShardedClient combines clients into one sharded deployment. All
// clients must share a value size. The shard order defines the
// partition: reconnect with the same order to reach the same data.
func NewShardedClient(clients []*Client) (*ShardedClient, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("ortoa: NewShardedClient requires at least one client")
	}
	size := clients[0].ValueSize()
	for i, c := range clients {
		if c.ValueSize() != size {
			return nil, fmt.Errorf("ortoa: shard %d has value size %d, shard 0 has %d", i, c.ValueSize(), size)
		}
	}
	return &ShardedClient{shards: clients}, nil
}

// Shards returns the number of partitions.
func (s *ShardedClient) Shards() int { return len(s.shards) }

func (s *ShardedClient) shardFor(key string) *Client {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// Load partitions data across shards and bulk-loads each.
func (s *ShardedClient) Load(data map[string][]byte) error {
	parts := make([]map[string][]byte, len(s.shards))
	for i := range parts {
		parts[i] = make(map[string][]byte)
	}
	for k, v := range data {
		h := fnv.New32a()
		h.Write([]byte(k))
		parts[h.Sum32()%uint32(len(s.shards))][k] = v
	}
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		if err := s.shards[i].Load(part); err != nil {
			return fmt.Errorf("ortoa: loading shard %d: %w", i, err)
		}
	}
	return nil
}

// Read obliviously reads key from its owning shard.
func (s *ShardedClient) Read(key string) ([]byte, error) {
	return s.shardFor(key).Read(key)
}

// Write obliviously writes key on its owning shard.
func (s *ShardedClient) Write(key string, value []byte) error {
	return s.shardFor(key).Write(key, value)
}

// SaveState persists every shard's protocol state, suffixing the path
// with the shard index.
func (s *ShardedClient) SaveState(pathPrefix string) error {
	for i, c := range s.shards {
		if err := c.SaveState(fmt.Sprintf("%s.%d", pathPrefix, i)); err != nil {
			return fmt.Errorf("ortoa: saving shard %d state: %w", i, err)
		}
	}
	return nil
}

// LoadState restores SaveState files.
func (s *ShardedClient) LoadState(pathPrefix string) error {
	for i, c := range s.shards {
		if err := c.LoadState(fmt.Sprintf("%s.%d", pathPrefix, i)); err != nil {
			return fmt.Errorf("ortoa: loading shard %d state: %w", i, err)
		}
	}
	return nil
}

// Close closes every shard client.
func (s *ShardedClient) Close() error {
	var first error
	for _, c := range s.shards {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
