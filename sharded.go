package ortoa

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// A ShardedClient hash-partitions keys across multiple independent
// deployments (proxy/server pairs), the scaling strategy of §6.2.4:
// "the system can scale the number of proxies without compromising
// security", since ORTOA hides operation types, not which shard a key
// lives on.
type ShardedClient struct {
	shards []*Client
}

// NewShardedClient combines clients into one sharded deployment. All
// clients must share a value size. The shard order defines the
// partition: reconnect with the same order to reach the same data.
func NewShardedClient(clients []*Client) (*ShardedClient, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("ortoa: NewShardedClient requires at least one client")
	}
	size := clients[0].ValueSize()
	for i, c := range clients {
		if c.ValueSize() != size {
			return nil, fmt.Errorf("ortoa: shard %d has value size %d, shard 0 has %d", i, c.ValueSize(), size)
		}
	}
	return &ShardedClient{shards: clients}, nil
}

// Shards returns the number of partitions.
func (s *ShardedClient) Shards() int { return len(s.shards) }

// shardIndex is the partition function: FNV-1a over the key, modulo
// the shard count. It is the single source of truth for placement —
// Load, the access paths, and the batch paths all route through it, so
// the mapping cannot silently diverge between loading and accessing.
func (s *ShardedClient) shardIndex(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(s.shards)))
}

func (s *ShardedClient) shardFor(key string) *Client {
	return s.shards[s.shardIndex(key)]
}

// Load partitions data across shards and bulk-loads each.
func (s *ShardedClient) Load(data map[string][]byte) error {
	parts := make([]map[string][]byte, len(s.shards))
	for i := range parts {
		parts[i] = make(map[string][]byte)
	}
	for k, v := range data {
		parts[s.shardIndex(k)][k] = v
	}
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		if err := s.shards[i].Load(part); err != nil {
			return fmt.Errorf("ortoa: loading shard %d: %w", i, err)
		}
	}
	return nil
}

// Read obliviously reads key from its owning shard.
func (s *ShardedClient) Read(key string) ([]byte, error) {
	return s.shardFor(key).Read(key)
}

// Write obliviously writes key on its owning shard.
func (s *ShardedClient) Write(key string, value []byte) error {
	return s.shardFor(key).Write(key, value)
}

// ReadBatch obliviously reads many keys, returning values in input
// order. Keys are grouped by owning shard and each shard's group is
// issued as one batched call, all shards in parallel — so a batch
// costs one round trip per touched shard rather than one per key.
func (s *ShardedClient) ReadBatch(keys []string) ([]KVPair, error) {
	perShard := make([][]string, len(s.shards))
	positions := make([][]int, len(s.shards))
	for i, key := range keys {
		si := s.shardIndex(key)
		perShard[si] = append(perShard[si], key)
		positions[si] = append(positions[si], i)
	}
	out := make([]KVPair, len(keys))
	var wg sync.WaitGroup
	errc := make(chan error, 1)
	for si := range s.shards {
		if len(perShard[si]) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			pairs, err := s.shards[si].ReadBatch(perShard[si])
			if err != nil {
				select {
				case errc <- fmt.Errorf("ortoa: shard %d batch read: %w", si, err):
				default:
				}
				return
			}
			for j, p := range pairs {
				out[positions[si][j]] = p
			}
		}(si)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
		return out, nil
	}
}

// ReadRange reads up to limit consecutive keys starting at start
// (inclusive) in global primary-key order, like Client.ReadRange but
// across the partition: each shard contributes its next candidates
// from its own key directory, the candidates merge into one sorted
// run, and the first limit of them are fetched with ReadBatch — so
// the range costs at most one round trip per touched shard. Hash
// partitioning scatters consecutive keys across shards, which is
// exactly why the merge (rather than any single shard's directory)
// defines the global order.
func (s *ShardedClient) ReadRange(start string, limit int) ([]KVPair, error) {
	if limit <= 0 {
		return nil, nil
	}
	// Each shard's next `limit` keys ≥ start together cover the global
	// next `limit`: every global candidate lives on some shard, and no
	// shard needs to contribute more than limit of them. Keys are
	// unique across shards (each key has one owning shard), so the
	// merged run has no duplicates.
	var candidates []string
	for _, c := range s.shards {
		candidates = append(candidates, c.rangeKeys(start, limit)...)
	}
	sort.Strings(candidates)
	if len(candidates) > limit {
		candidates = candidates[:limit]
	}
	return s.ReadBatch(candidates)
}

// WriteBatch obliviously writes many entries, one batched call per
// touched shard, all shards in parallel.
func (s *ShardedClient) WriteBatch(entries map[string][]byte) error {
	perShard := make([]map[string][]byte, len(s.shards))
	for key, value := range entries {
		si := s.shardIndex(key)
		if perShard[si] == nil {
			perShard[si] = make(map[string][]byte)
		}
		perShard[si][key] = value
	}
	var wg sync.WaitGroup
	errc := make(chan error, 1)
	for si := range s.shards {
		if len(perShard[si]) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			if err := s.shards[si].WriteBatch(perShard[si]); err != nil {
				select {
				case errc <- fmt.Errorf("ortoa: shard %d batch write: %w", si, err):
				default:
				}
			}
		}(si)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// SaveState persists every shard's protocol state, suffixing the path
// with the shard index.
func (s *ShardedClient) SaveState(pathPrefix string) error {
	for i, c := range s.shards {
		if err := c.SaveState(fmt.Sprintf("%s.%d", pathPrefix, i)); err != nil {
			return fmt.Errorf("ortoa: saving shard %d state: %w", i, err)
		}
	}
	return nil
}

// LoadState restores SaveState files.
func (s *ShardedClient) LoadState(pathPrefix string) error {
	for i, c := range s.shards {
		if err := c.LoadState(fmt.Sprintf("%s.%d", pathPrefix, i)); err != nil {
			return fmt.Errorf("ortoa: loading shard %d state: %w", i, err)
		}
	}
	return nil
}

// Close closes every shard client.
func (s *ShardedClient) Close() error {
	var first error
	for _, c := range s.shards {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
