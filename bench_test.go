package ortoa

// Benchmarks regenerating the paper's evaluation. One benchmark per
// table/figure drives the corresponding harness experiment (smoke
// scale — `go test -bench Fig -benchtime 1x`); cmd/ortoa-bench runs
// the full-scale versions. The remaining benchmarks measure the
// protocol hot paths themselves.

import (
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"ortoa/internal/harness"
	"ortoa/internal/netsim"
	"ortoa/internal/workload"
)

// benchOpts keeps experiment benchmarks at smoke scale.
var benchOpts = harness.Options{Quick: true, Keys: 48, Ops: 2, Concurrency: 4}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := harness.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		table, err := exp.Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if err := table.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2RTT(b *testing.B)         { runExperiment(b, "table2") }
func BenchmarkFig2aLocations(b *testing.B)    { runExperiment(b, "fig2a") }
func BenchmarkFig2bConcurrency(b *testing.B)  { runExperiment(b, "fig2b") }
func BenchmarkFig2cWriteRatio(b *testing.B)   { runExperiment(b, "fig2c") }
func BenchmarkFig2dDatabaseSize(b *testing.B) { runExperiment(b, "fig2d") }
func BenchmarkFig3aScaling(b *testing.B)      { runExperiment(b, "fig3a") }
func BenchmarkFig3bValueSize(b *testing.B)    { runExperiment(b, "fig3b") }
func BenchmarkFig3cBreakdown(b *testing.B)    { runExperiment(b, "fig3c") }
func BenchmarkFig3dGDPR(b *testing.B)         { runExperiment(b, "fig3d") }
func BenchmarkFig4RealDatasets(b *testing.B)  { runExperiment(b, "fig4") }
func BenchmarkFHENoise(b *testing.B)          { runExperiment(b, "fhe-noise") }
func BenchmarkCostModel(b *testing.B)         { runExperiment(b, "cost") }
func BenchmarkFig6Factors(b *testing.B)       { runExperiment(b, "fig6") }
func BenchmarkAblationLBLModes(b *testing.B)  { runExperiment(b, "ablation-lbl") }
func BenchmarkAblationTEECost(b *testing.B)   { runExperiment(b, "ablation-tee") }
func BenchmarkAblationFHERelin(b *testing.B)  { runExperiment(b, "ablation-fhe-relin") }
func BenchmarkAblationZipf(b *testing.B)      { runExperiment(b, "ablation-zipf") }
func BenchmarkAttackSnapshot(b *testing.B)    { runExperiment(b, "attack-snapshot") }
func BenchmarkORAMRounds(b *testing.B)        { runExperiment(b, "oram-rounds") }

// --- protocol hot paths (loopback link, no WAN sleeps) ---

func benchDeploy(b *testing.B, protocol Protocol, valueSize int) *Client {
	b.Helper()
	scfg := ServerConfig{Protocol: protocol, ValueSize: valueSize}
	ccfg := ClientConfig{Protocol: protocol, ValueSize: valueSize, Keys: GenerateKeys()}
	if protocol == ProtocolFHE {
		opts := FHEOptions{RingDegree: 64, ModulusBits: 220}
		scfg.FHE, ccfg.FHE = opts, opts
	}
	server, err := NewServer(scfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { server.Close() })
	l := netsim.Listen(netsim.Loopback)
	go server.Serve(l)
	client, err := NewClient(ccfg, func() (net.Conn, error) { return l.Dial() })
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	if protocol == ProtocolTEE {
		if err := client.Provision(); err != nil {
			b.Fatal(err)
		}
	}
	data := make(map[string][]byte, 64)
	for i := 0; i < 64; i++ {
		data[workload.Key(i)] = make([]byte, valueSize)
	}
	if err := client.Load(data); err != nil {
		b.Fatal(err)
	}
	return client
}

// BenchmarkLBLAccess160B measures one LBL-ORTOA access at the paper's
// default object size: the proxy's table construction (2·ℓ PRFs +
// 2^y·ℓ/y seals), the server's decrypt-and-install, and the recovery.
func BenchmarkLBLAccess160B(b *testing.B) {
	client := benchDeploy(b, ProtocolLBL, 160)
	value := make([]byte, 160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if i%2 == 0 {
			_, err = client.Read(workload.Key(i % 64))
		} else {
			err = client.Write(workload.Key(i%64), value)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLBLAccessBySize sweeps the value sizes of Fig 3b.
func BenchmarkLBLAccessBySize(b *testing.B) {
	for _, size := range []int{10, 50, 160, 300, 600} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			client := benchDeploy(b, ProtocolLBL, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Read(workload.Key(i % 64)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTEEAccess160B measures a TEE-ORTOA access: two AES seals at
// the client, one ecall with three opens and a seal in the enclave.
func BenchmarkTEEAccess160B(b *testing.B) {
	client := benchDeploy(b, ProtocolTEE, 160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Read(workload.Key(i % 64)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineAccess160B measures the 2RTT baseline access: two
// RPCs, one open, one seal.
func BenchmarkBaselineAccess160B(b *testing.B) {
	client := benchDeploy(b, ProtocolBaseline2RTT, 160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Read(workload.Key(i % 64)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFHEAccessWrite measures one FHE-ORTOA write: three BFV
// encryptions at the client plus two homomorphic multiplications and
// an addition at the server. Writes keep the stored degree growing, so
// successive iterations get costlier, exactly as §3.3 describes —
// reads are benchmarked only a few at a time for that reason.
func BenchmarkFHEAccessWrite(b *testing.B) {
	client := benchDeploy(b, ProtocolFHE, 16)
	value := make([]byte, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Spread accesses over keys so no single ciphertext exceeds
		// its degree cap mid-benchmark.
		if err := client.Write(workload.Key(i%64), value); err != nil {
			b.Fatal(err)
		}
	}
}

// --- batched access pipeline ---

// benchDeployLink is benchDeploy over an arbitrary link, for the batch
// benchmarks where the round-trip count is the quantity under test.
func benchDeployLink(b *testing.B, link netsim.Link, valueSize, keys int) *Client {
	b.Helper()
	server, err := NewServer(ServerConfig{Protocol: ProtocolLBL, ValueSize: valueSize})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { server.Close() })
	l := netsim.Listen(link)
	go server.Serve(l)
	client, err := NewClient(
		ClientConfig{Protocol: ProtocolLBL, ValueSize: valueSize, Keys: GenerateKeys()},
		func() (net.Conn, error) { return l.Dial() })
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	data := make(map[string][]byte, keys)
	for i := 0; i < keys; i++ {
		data[workload.Key(i)] = make([]byte, valueSize)
	}
	if err := client.Load(data); err != nil {
		b.Fatal(err)
	}
	return client
}

// batchBenchLink models the paper's cross-country hop (Table 2's
// N.Virginia propagation delay, bandwidth left unlimited so the
// comparison isolates round trips). Batching's payoff is round trips,
// not CPU: on loopback the SHA-256 sealing work dominates and both
// paths measure the same, so the benchmark runs where the paper's
// deployments do — behind real latency. The concurrent fallback is
// windowed at batchParallelism in-flight calls, so a batch of 64 costs
// it ⌈64/16⌉ = 4 sequential round trips; the batch RPC costs 1.
var batchBenchLink = netsim.Link{RTT: 62 * time.Millisecond}

const batchBenchSize = 64

func benchBatchKeys() []string {
	keys := make([]string, batchBenchSize)
	for i := range keys {
		keys[i] = workload.Key(i)
	}
	return keys
}

// BenchmarkReadBatch64WAN measures the batched pipeline end to end:
// one MsgLBLAccessBatch round trip for 64 keys.
func BenchmarkReadBatch64WAN(b *testing.B) {
	client := benchDeployLink(b, batchBenchLink, 160, batchBenchSize)
	keys := benchBatchKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.ReadBatch(keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadBatch64WANConcurrent measures the seed's fallback path
// on the same link and batch: one RPC per key, batchParallelism at a
// time. The ratio against BenchmarkReadBatch64WAN is the batching win.
func BenchmarkReadBatch64WANConcurrent(b *testing.B) {
	client := benchDeployLink(b, batchBenchLink, 160, batchBenchSize)
	keys := benchBatchKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.readBatchConcurrent(keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadBatch64Loopback isolates the CPU side of the batch
// path (table building, batch framing, server fan-out) with no
// latency to hide behind.
func BenchmarkReadBatch64Loopback(b *testing.B) {
	client := benchDeployLink(b, netsim.Loopback, 160, batchBenchSize)
	keys := benchBatchKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.ReadBatch(keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteBatch64WAN is the write-side twin of
// BenchmarkReadBatch64WAN — identical traffic shape by design.
func BenchmarkWriteBatch64WAN(b *testing.B) {
	client := benchDeployLink(b, batchBenchLink, 160, batchBenchSize)
	entries := make(map[string][]byte, batchBenchSize)
	value := make([]byte, 160)
	for i := 0; i < batchBenchSize; i++ {
		entries[workload.Key(i)] = value
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.WriteBatch(entries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoad measures initial outsourcing (Init of Figure 1).
func BenchmarkLoad(b *testing.B) {
	for _, protocol := range []Protocol{ProtocolLBL, ProtocolTEE} {
		b.Run(string(protocol), func(b *testing.B) {
			client := benchDeploy(b, protocol, 160)
			data := make(map[string][]byte, 32)
			for i := 0; i < 32; i++ {
				data[fmt.Sprintf("load-%d-", i)] = make([]byte, 160)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := client.Load(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
