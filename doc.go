// Package ortoa is a Go implementation of ORTOA, a family of one
// round trip protocols for operation-type obliviousness (Maiyya et
// al., EDBT 2024).
//
// An ORTOA deployment is an encrypted key-value store whose untrusted
// server cannot tell whether any given client access is a read or a
// write: every access reads and replaces the stored record in one
// round trip. Three protocol variants trade trust assumptions:
//
//   - ProtocolLBL (§5): a garbled-circuit-inspired label encoding.
//     No special hardware, no homomorphic encryption; requires a
//     stateful trusted proxy holding per-key access counters.
//   - ProtocolTEE (§4): the selection runs inside a (simulated)
//     trusted enclave at the server. Fastest, but trusts enclave
//     hardware.
//   - ProtocolFHE (§3): the selection is evaluated homomorphically
//     with BFV. One round, but noise growth makes it impractical
//     after a handful of accesses per object — included because the
//     paper includes it, measured by the fhe-noise experiment.
//   - ProtocolBaseline2RTT (§6): read-then-write over two rounds,
//     the state of the art ORTOA halves.
//
// The top-level package exposes the deployment-facing API: Server
// hosts the untrusted store, Client is the trusted side (proxy or
// key-holding client) issuing oblivious reads and writes. The
// simulation substrates (WAN links, enclaves, BFV) and the experiment
// harness live under internal/.
//
// A minimal deployment:
//
//	keys := ortoa.GenerateKeys()
//	server, _ := ortoa.NewServer(ortoa.ServerConfig{Protocol: ortoa.ProtocolLBL, ValueSize: 160})
//	go server.Serve(listener)
//
//	client, _ := ortoa.NewClient(ortoa.ClientConfig{
//		Protocol: ortoa.ProtocolLBL, ValueSize: 160, Keys: keys,
//	}, dial)
//	client.Load(initialData)
//	v, _ := client.Read("account-17")
//	client.Write("account-17", newBalance)
//
// Beyond single accesses, the package provides ReadBatch/WriteBatch
// pipelining, ReadRange over the trusted-side key directory (§8.2),
// ShardedClient scale-out (§6.2.4), durable server state (snapshots
// and a write-ahead log), LBL proxy-state persistence, and Recommend,
// which evaluates the paper's §6.3.2 protocol-selection rule for a
// deployment's link and value size.
//
// See examples/ for runnable programs and DESIGN.md / EXPERIMENTS.md
// for the reproduction methodology.
package ortoa
