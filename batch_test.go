package ortoa

import (
	"bytes"
	"fmt"
	"testing"
)

func batchTestData(n, valueSize int) (map[string][]byte, []string) {
	data := map[string][]byte{}
	var keys []string
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := make([]byte, valueSize)
		v[0] = byte(i)
		data[k] = v
		keys = append(keys, k)
	}
	return data, keys
}

func TestReadBatchSingleRPC(t *testing.T) {
	// The headline batching property at the public API: 64 reads, one
	// RPC. The concurrent fallback would cost 64.
	client := deploy(t, ProtocolLBL, 8, nil)
	data, keys := batchTestData(64, 8)
	if err := client.Load(data); err != nil {
		t.Fatal(err)
	}
	_, _, callsBefore := client.TrafficStats()
	pairs, err := client.ReadBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	_, _, callsAfter := client.TrafficStats()
	if got := callsAfter - callsBefore; got != 1 {
		t.Errorf("ReadBatch(64 keys) made %d RPCs, want 1", got)
	}
	for i, p := range pairs {
		if p.Key != keys[i] {
			t.Errorf("pair %d key = %q, want %q", i, p.Key, keys[i])
		}
		if !bytes.Equal(p.Value, data[p.Key]) {
			t.Errorf("pair %d value = %v, want %v", i, p.Value, data[p.Key])
		}
	}
}

func TestWriteBatchSingleRPC(t *testing.T) {
	client := deploy(t, ProtocolLBL, 8, nil)
	data, keys := batchTestData(32, 8)
	if err := client.Load(data); err != nil {
		t.Fatal(err)
	}
	updates := map[string][]byte{}
	for i, k := range keys {
		updates[k] = []byte{byte(i + 100)} // short on purpose: padded
	}
	_, _, callsBefore := client.TrafficStats()
	if err := client.WriteBatch(updates); err != nil {
		t.Fatal(err)
	}
	_, _, callsAfter := client.TrafficStats()
	if got := callsAfter - callsBefore; got != 1 {
		t.Errorf("WriteBatch(32 entries) made %d RPCs, want 1", got)
	}
	pairs, err := client.ReadBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if p.Value[0] != byte(i+100) {
			t.Errorf("key %q = %v after batch write, want first byte %d", p.Key, p.Value, i+100)
		}
	}
}

func TestReadBatchFallbackProtocols(t *testing.T) {
	// Protocols without a batch RPC must still serve batches correctly
	// via the concurrent fallback.
	for _, p := range []Protocol{ProtocolTEE, ProtocolBaseline2RTT} {
		t.Run(string(p), func(t *testing.T) {
			client := deploy(t, p, 8, nil)
			data, keys := batchTestData(12, 8)
			if err := client.Load(data); err != nil {
				t.Fatal(err)
			}
			pairs, err := client.ReadBatch(keys)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range pairs {
				if p.Key != keys[i] || !bytes.Equal(p.Value, data[p.Key]) {
					t.Errorf("pair %d = %+v", i, p)
				}
			}
			updates := map[string][]byte{keys[0]: {0xEE}}
			if err := client.WriteBatch(updates); err != nil {
				t.Fatal(err)
			}
			got, err := client.Read(keys[0])
			if err != nil || got[0] != 0xEE {
				t.Errorf("read after fallback batch write = %v, %v", got, err)
			}
		})
	}
}

func TestReadRangeSingleRPC(t *testing.T) {
	client := deploy(t, ProtocolLBL, 8, nil)
	data, _ := batchTestData(40, 8)
	if err := client.Load(data); err != nil {
		t.Fatal(err)
	}
	_, _, callsBefore := client.TrafficStats()
	pairs, err := client.ReadRange("key-010", 10)
	if err != nil {
		t.Fatal(err)
	}
	_, _, callsAfter := client.TrafficStats()
	if got := callsAfter - callsBefore; got != 1 {
		t.Errorf("ReadRange of 10 keys made %d RPCs, want 1", got)
	}
	if len(pairs) != 10 {
		t.Fatalf("range returned %d pairs, want 10", len(pairs))
	}
	for i, p := range pairs {
		want := fmt.Sprintf("key-%03d", 10+i)
		if p.Key != want {
			t.Errorf("range pair %d = %q, want %q", i, p.Key, want)
		}
		if p.Value[0] != byte(10+i) {
			t.Errorf("range pair %d value = %v", i, p.Value)
		}
	}
}

func TestReadBatchDuplicateKeysAtAPI(t *testing.T) {
	client := deploy(t, ProtocolLBL, 8, nil)
	data, _ := batchTestData(4, 8)
	if err := client.Load(data); err != nil {
		t.Fatal(err)
	}
	keys := []string{"key-001", "key-002", "key-001", "key-001"}
	pairs, err := client.ReadBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if p.Key != keys[i] {
			t.Errorf("pair %d key = %q, want %q", i, p.Key, keys[i])
		}
		if !bytes.Equal(p.Value, data[p.Key]) {
			t.Errorf("pair %d value = %v, want %v", i, p.Value, data[p.Key])
		}
	}
}
