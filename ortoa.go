package ortoa

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/crypto/prf"
	"ortoa/internal/fhe"
	"ortoa/internal/kvstore"
	"ortoa/internal/obs"
	"ortoa/internal/obs/trace"
	"ortoa/internal/transport"
	"ortoa/internal/vfs"
)

// Protocol selects an ORTOA variant.
type Protocol string

// Protocols.
const (
	// ProtocolLBL is the label-based protocol (§5), the paper's main
	// contribution. Default.
	ProtocolLBL Protocol = "lbl"
	// ProtocolTEE runs the selector in a simulated enclave (§4).
	ProtocolTEE Protocol = "tee"
	// ProtocolFHE evaluates the selector homomorphically (§3).
	// Impractical beyond a handful of accesses per object, as the
	// paper reports; see the fhe-noise experiment.
	ProtocolFHE Protocol = "fhe"
	// ProtocolBaseline2RTT is the two-round read-then-write baseline.
	ProtocolBaseline2RTT Protocol = "2rtt"
)

// LBLVariant selects the label-protocol optimization level.
type LBLVariant string

// LBL variants (§5.2, §10).
const (
	// LBLPointPermute is y=2 with point-and-permute — the default and
	// the configuration of the paper's cost analysis.
	LBLPointPermute LBLVariant = "point-permute"
	// LBLSpaceOpt is y=2 without decryption bits.
	LBLSpaceOpt LBLVariant = "space-opt"
	// LBLBasic is the unoptimized one-label-per-bit protocol.
	LBLBasic LBLVariant = "basic"
	// LBLWide packs four bits per label (appendix §10.1 generalized):
	// half the server storage of y=2, double the request size.
	LBLWide LBLVariant = "wide"
	// LBLWidePointPermute is y=4 with point-and-permute.
	LBLWidePointPermute LBLVariant = "wide-point-permute"
)

// FsyncPolicy names a WAL durability policy: when journaled mutations
// reach stable storage (DESIGN.md §10).
type FsyncPolicy string

// Fsync policies.
const (
	// FsyncNever leaves fsync scheduling to the caller (SyncWAL,
	// checkpoints): acknowledged writes survive process death but not
	// machine crashes.
	FsyncNever FsyncPolicy = "never"
	// FsyncInterval fsyncs on a background cadence; a crash loses at
	// most one interval of acknowledged writes. Default.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncGroupCommit acknowledges a mutation only after its record
	// is fsynced; concurrent writers share one fsync (durable-on-ack).
	FsyncGroupCommit FsyncPolicy = "group-commit"
)

func (p FsyncPolicy) policy() (kvstore.SyncPolicy, error) {
	if p == "" {
		return kvstore.SyncInterval, nil
	}
	return kvstore.ParseSyncPolicy(string(p))
}

func (v LBLVariant) mode() (core.LBLMode, error) {
	switch v {
	case LBLPointPermute, "":
		return core.LBLPointPermute, nil
	case LBLSpaceOpt:
		return core.LBLSpaceOpt, nil
	case LBLBasic:
		return core.LBLBasic, nil
	case LBLWide:
		return core.LBLWide, nil
	case LBLWidePointPermute:
		return core.LBLWidePointPermute, nil
	default:
		return 0, fmt.Errorf("ortoa: unknown LBL variant %q", v)
	}
}

// FHEOptions tunes the BFV parameter set; client and server must
// agree.
type FHEOptions struct {
	// RingDegree is N (power of two ≥ 16; default 512). Plaintext
	// capacity is 2(N−1) bytes.
	RingDegree int
	// ModulusBits sizes the ciphertext modulus (default 370). More
	// bits buy more accesses per object before noise failure.
	ModulusBits int
	// RelinBaseBits, when nonzero, enables relinearization: the client
	// provisions an evaluation key at connect time and the server
	// keeps stored ciphertexts at constant size. The per-object access
	// budget is unchanged (noise, not size, is the binding §3.3
	// constraint).
	RelinBaseBits int
}

func (o FHEOptions) params() (fhe.Parameters, error) {
	n := o.RingDegree
	if n == 0 {
		n = 512
	}
	bits := o.ModulusBits
	if bits == 0 {
		bits = 370
	}
	return fhe.NewParameters(n, bits)
}

// AdmissionOptions bounds a server's (or proxy front end's)
// concurrent work with deadline-aware load shedding. Requests beyond
// MaxInflight wait in a bounded queue served newest-first — under
// saturation LIFO preserves goodput where FIFO would age every
// request to its deadline — and requests that cannot be served are
// rejected with a constant-size busy frame (IsBusy) carrying a
// retry-after hint, before any protocol work happens. Rejections are
// shape-audited under the request's own class, so shedding leaks no
// operation types. The zero value disables admission control.
type AdmissionOptions struct {
	// MaxInflight is the number of requests handled concurrently;
	// zero or negative disables admission control entirely.
	MaxInflight int
	// MaxQueue bounds requests waiting for an inflight slot. Zero
	// means no queue: overflow is shed immediately.
	MaxQueue int
	// ShedDeadline, when true, drops queued (and arriving) requests
	// whose propagated deadline budget has already expired — work the
	// caller has abandoned — before spending an inflight slot on them.
	ShedDeadline bool
	// RetryAfter is the backoff hint carried in busy rejections
	// (default 25ms). Clients honor it as a floor on their retry
	// backoff.
	RetryAfter time.Duration
}

func (o AdmissionOptions) config() transport.AdmissionConfig {
	return transport.AdmissionConfig{
		MaxInflight: o.MaxInflight,
		MaxQueue:    o.MaxQueue,
		ShedExpired: o.ShedDeadline,
		RetryAfter:  o.RetryAfter,
	}
}

// ServerConfig configures the untrusted storage server.
type ServerConfig struct {
	// Protocol selects which access handlers to serve. Empty serves
	// LBL.
	Protocol Protocol
	// ValueSize is the store's fixed plaintext value length in bytes.
	ValueSize int
	// FHE tunes BFV parameters (ProtocolFHE only).
	FHE FHEOptions
	// EnclaveTransition simulates per-ecall enclave overhead
	// (ProtocolTEE only).
	EnclaveTransition time.Duration
	// Metrics, when non-nil, instruments the server: transport, store,
	// and protocol handler metrics are registered with it (serve them
	// with ServeMetrics). Nil runs without observability overhead.
	// Metrics also arms the continuous obliviousness shape auditor:
	// every access frame's length is checked online against its class
	// and divergences fail /healthz.
	Metrics *obs.Registry
	// TraceBuffer, when positive, turns on distributed tracing
	// (requires Metrics): the server retains up to this many finished
	// spans for /trace, joining traces whose context arrives in request
	// frame headers. The trace field is part of every frame whether
	// tracing is on or off, so enabling it changes nothing the server's
	// network observer can see.
	TraceBuffer int
	// Admission, when MaxInflight is positive, bounds the server's
	// concurrent work and sheds overload with constant-size busy
	// rejections instead of queueing unboundedly.
	Admission AdmissionOptions
}

// NewMetricsRegistry returns an empty metrics registry to set as
// ServerConfig.Metrics or ClientConfig.Metrics. One registry may be
// shared by several components; same-named series aggregate.
func NewMetricsRegistry() *obs.Registry { return obs.NewRegistry() }

// ServeMetrics serves reg's observability endpoints on addr in the
// background: Prometheus-format /metrics, /healthz, /slowlog, and
// net/http/pprof under /debug/pprof/. The returned server's Addr
// field holds the resolved listen address; Close it to stop serving.
func ServeMetrics(addr string, reg *obs.Registry) (*http.Server, error) {
	return obs.ServeAdmin(addr, reg)
}

// A Server is the untrusted side of a deployment: the record store
// plus the selected protocol's handlers. It learns neither values nor
// operation types.
type Server struct {
	store    *kvstore.Store
	ts       *transport.Server
	stopCkpt func()
}

// NewServer builds a server for cfg.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.ValueSize <= 0 {
		return nil, fmt.Errorf("ortoa: ServerConfig.ValueSize must be positive")
	}
	s := &Server{store: kvstore.New(), ts: transport.NewServer()}
	s.store.Instrument(cfg.Metrics)
	s.ts.Instrument(cfg.Metrics)
	s.ts.AuditShape(obs.NewShapeAuditor(cfg.Metrics, "server"), core.ShapeClassify)
	if cfg.Metrics != nil && cfg.TraceBuffer > 0 {
		s.ts.SetTracer(cfg.Metrics.Tracer("server", cfg.TraceBuffer))
	}
	s.ts.LimitAdmission(cfg.Admission.config())
	core.RegisterLoader(s.ts, s.store)
	switch cfg.Protocol {
	case ProtocolLBL, "":
		lblSrv := core.NewLBLServer(s.store)
		lblSrv.Instrument(cfg.Metrics)
		lblSrv.Register(s.ts)
	case ProtocolTEE:
		teeSrv, err := core.NewTEEServer(s.store, cfg.EnclaveTransition)
		if err != nil {
			return nil, err
		}
		teeSrv.Instrument(cfg.Metrics)
		teeSrv.Register(s.ts)
	case ProtocolFHE:
		params, err := cfg.FHE.params()
		if err != nil {
			return nil, err
		}
		fheSrv := core.NewFHEServer(s.store, core.FHEConfig{Params: params, ValueSize: cfg.ValueSize})
		fheSrv.Instrument(cfg.Metrics)
		fheSrv.Register(s.ts)
	case ProtocolBaseline2RTT:
		core.NewBaselineServer(s.store).Register(s.ts)
	default:
		return nil, fmt.Errorf("ortoa: unknown protocol %q", cfg.Protocol)
	}
	return s, nil
}

// Serve accepts connections from l until Close. It always returns a
// non-nil error.
func (s *Server) Serve(l net.Listener) error { return s.ts.Serve(l) }

// Records returns the number of stored records.
func (s *Server) Records() int { return s.store.Len() }

// StorageBytes returns the server-side storage footprint (§5.3.1).
func (s *Server) StorageBytes() int64 { return s.store.Bytes() }

// SaveSnapshot persists the (encrypted) store to path.
func (s *Server) SaveSnapshot(path string) error { return s.store.SaveFile(path) }

// LoadSnapshot restores a SaveSnapshot file into the store.
func (s *Server) LoadSnapshot(path string) error { return s.store.LoadFile(path) }

// AttachWAL replays the write-ahead log at path into the store and
// journals every subsequent record mutation, so a crashed server
// restarts with its records intact. Call before Serve. Mutations are
// acknowledged from the OS buffer cache (FsyncNever); use
// AttachWALPolicy or OpenState for a crash-durability guarantee.
func (s *Server) AttachWAL(path string) error { return s.store.AttachWAL(path) }

// AttachWALPolicy is AttachWAL with an explicit fsync policy.
// FsyncInterval fsyncs every syncInterval (default 1s); a crash loses
// at most that window of acknowledged writes. FsyncGroupCommit
// acknowledges a mutation only after its record is fsynced, with
// concurrent writers sharing one fsync — durable-on-ack.
func (s *Server) AttachWALPolicy(path string, fsync FsyncPolicy, syncInterval time.Duration) error {
	policy, err := fsync.policy()
	if err != nil {
		return err
	}
	return s.store.AttachWALOptions(path, kvstore.WALOptions{Policy: policy, Interval: syncInterval})
}

// DurabilityOptions configures OpenState.
type DurabilityOptions struct {
	// Fsync is the WAL fsync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// SyncInterval is the FsyncInterval flush cadence (default 1s).
	SyncInterval time.Duration
	// CheckpointInterval, when positive, runs background checkpoints —
	// snapshot + WAL rotation — bounding recovery replay time. The
	// returned stop function from StartCheckpoints is managed by Close.
	CheckpointInterval time.Duration
}

// OpenState recovers the newest consistent checkpoint generation from
// the state directory dir — snapshot plus WAL, with an interrupted
// checkpoint rolled forward — and journals every subsequent mutation
// there. A first run initializes the directory. When
// opts.CheckpointInterval is positive, background checkpoints start
// immediately and stop at Close. Call before Serve; OpenState and
// AttachWAL are mutually exclusive.
func (s *Server) OpenState(dir string, opts DurabilityOptions) error {
	policy, err := opts.Fsync.policy()
	if err != nil {
		return err
	}
	if err := s.store.Recover(dir, kvstore.DurabilityOptions{
		Policy:       policy,
		SyncInterval: opts.SyncInterval,
	}); err != nil {
		return err
	}
	if opts.CheckpointInterval > 0 {
		s.stopCkpt = s.store.StartCheckpoints(opts.CheckpointInterval)
	}
	return nil
}

// Checkpoint snapshots the store and rotates the WAL to a fresh
// generation, retiring the previous pair (OpenState stores only). Safe
// under concurrent traffic.
func (s *Server) Checkpoint() error { return s.store.Checkpoint() }

// Generation returns the committed checkpoint generation (OpenState
// stores; 0 otherwise).
func (s *Server) Generation() uint64 { return s.store.Generation() }

// SyncWAL flushes and fsyncs the write-ahead log.
func (s *Server) SyncWAL() error { return s.store.SyncWAL() }

// CompactWAL rewrites the log to one record per live key. Every ORTOA
// access rewrites a record, so logs grow linearly with traffic;
// periodic compaction bounds restart time.
func (s *Server) CompactWAL() error { return s.store.CompactWAL() }

// DetachWAL flushes, fsyncs, and closes the log.
func (s *Server) DetachWAL() error { return s.store.DetachWAL() }

// Close stops serving and halts background checkpoints.
func (s *Server) Close() error {
	if s.stopCkpt != nil {
		s.stopCkpt()
		s.stopCkpt = nil
	}
	return s.ts.Close()
}

// ClientConfig configures the trusted side.
type ClientConfig struct {
	// Protocol must match the server's. Empty means LBL.
	Protocol Protocol
	// ValueSize is the fixed plaintext value length in bytes; shorter
	// writes are zero-padded by Write.
	ValueSize int
	// Keys are the trusted side's secrets.
	Keys Keys
	// LBLVariant selects the label-protocol optimization (LBL only).
	LBLVariant LBLVariant
	// FHE must match the server's FHE options (FHE only).
	FHE FHEOptions
	// Conns sizes the connection pool to the server (default 4).
	Conns int
	// CallTimeout bounds each RPC attempt to the server; a call against
	// a stalled or unreachable server fails after this long instead of
	// hanging. Zero means no deadline.
	CallTimeout time.Duration
	// RetryAttempts is the total number of attempts per RPC, including
	// the first; values below 2 disable retries. Retries are
	// at-most-once: they reuse the request id, so a request whose
	// response was lost is answered from the server's dedup cache
	// rather than re-executed, and the LBL label schedule stays
	// consistent. Reads and writes retry identically, so the retry
	// pattern leaks no operation types.
	RetryAttempts int
	// ReconcileScan, when positive, lets the proxy recover from
	// counter desynchronization after a crash (LBL only): on a stale
	// rejection it probes up to this many counter steps each way to
	// re-locate the server's position, instead of failing the key
	// forever (§5.3.1). Probes are read-shaped, so recovery traffic
	// leaks no operation types. Useful together with a server running
	// a lossy fsync policy, or when resuming from a stale SaveState
	// snapshot; zero disables.
	ReconcileScan int
	// AutoAdopt, when true, lets this proxy adopt a counter range on
	// demand in a multi-proxy deployment (LBL only): an access fenced
	// by the server's epoch check re-claims the range at a fresh epoch
	// and retries, instead of surfacing the fence to the caller. Set it
	// on every member of a proxy group so survivors absorb a dead
	// peer's ranges; pair with ReconcileScan so adopted counters rebase
	// (the adopter starts from its own, possibly stale, snapshot).
	AutoAdopt bool
	// StreamChunk, when positive, streams each LBL access table to the
	// server in sealed chunks of about this many bytes as they are
	// built (LBL only): the server trial-decrypts chunk by chunk while
	// later chunks are still being garbled and in flight, pipelining
	// proxy CPU against the WAN, and the proxy's peak table memory per
	// access drops to roughly one chunk. Still one logical request and
	// one response. Zero keeps the monolithic single-frame request;
	// tables that fit in one chunk fall back to it automatically.
	StreamChunk int
	// Metrics, when non-nil, instruments the trusted side: transport
	// and per-stage access metrics are registered with it (serve them
	// with ServeMetrics). Nil runs without observability overhead.
	// Metrics also arms the proxy-side obliviousness shape auditor
	// (see ServerConfig.Metrics).
	Metrics *obs.Registry
	// TraceBuffer, when positive, turns on distributed tracing
	// (requires Metrics): accesses record per-stage span trees, retained
	// for /trace, and their context rides the fixed-size trace field of
	// every request frame so the server's spans join the same trace.
	TraceBuffer int
}

// A Client is the trusted side of a deployment — the proxy (LBL,
// baseline) or a key-holding client (TEE, FHE). It is safe for
// concurrent use; LBL accesses to the same key serialize internally.
type Client struct {
	protocol  Protocol
	valueSize int
	accessor  core.Accessor
	builder   interface {
		BuildRecord(key string, value []byte) (string, []byte, error)
	}
	rpc       *transport.Client
	teeClient *core.TEEClient
	lblProxy  *core.LBLProxy
	fheSecret []byte
	metrics   *obs.Registry
	tracer    *trace.Tracer
	shapeAud  *obs.ShapeAuditor

	// directory tracks loaded keys in sorted order, enabling the
	// §8.2-style range reads over primary keys.
	dirMu     sync.RWMutex
	directory []string

	// saveMu serializes SaveState writers: WriteFileAtomic's temporary
	// name is deterministic, so two concurrent saves of one path would
	// race on the same temp file.
	saveMu sync.Mutex

	// proxyMu guards the proxy front ends started by ServeProxy, so
	// Close can stop their listeners, drain accepted end-user
	// connections, and flush aggregation windows.
	proxyMu     sync.Mutex
	proxySrvs   []*transport.Server
	proxyAggs   []*core.Aggregator
	proxyClosed bool
}

// NewClient connects a client using dial (e.g. a net.Dialer bound to
// the server address, or a netsim listener's Dial).
func NewClient(cfg ClientConfig, dial func() (net.Conn, error)) (*Client, error) {
	if cfg.ValueSize <= 0 {
		return nil, fmt.Errorf("ortoa: ClientConfig.ValueSize must be positive")
	}
	if err := cfg.Keys.validate(); err != nil {
		return nil, err
	}
	conns := cfg.Conns
	if conns <= 0 {
		conns = 4
	}
	rpc, err := transport.DialOptions(dial, transport.Options{
		PoolSize:    conns,
		CallTimeout: cfg.CallTimeout,
		Retry:       transport.RetryPolicy{Attempts: cfg.RetryAttempts},
	})
	if err != nil {
		return nil, err
	}
	f, err := prf.New(cfg.Keys.PRFKey)
	if err != nil {
		rpc.Close()
		return nil, err
	}
	c := &Client{protocol: cfg.Protocol, valueSize: cfg.ValueSize, rpc: rpc, metrics: cfg.Metrics}
	rpc.Instrument(cfg.Metrics)
	c.shapeAud = obs.NewShapeAuditor(cfg.Metrics, "proxy")
	rpc.AuditShape(c.shapeAud, core.ShapeClassify)
	if cfg.Metrics != nil && cfg.TraceBuffer > 0 {
		c.tracer = cfg.Metrics.Tracer("proxy", cfg.TraceBuffer)
		rpc.SetTracer(c.tracer)
	}
	switch cfg.Protocol {
	case ProtocolLBL, "":
		mode, err := cfg.LBLVariant.mode()
		if err != nil {
			rpc.Close()
			return nil, err
		}
		proxy, err := core.NewLBLProxy(core.LBLConfig{ValueSize: cfg.ValueSize, Mode: mode, ReconcileScan: cfg.ReconcileScan, AutoAdopt: cfg.AutoAdopt, StreamChunkBytes: cfg.StreamChunk}, f, rpc)
		if err != nil {
			rpc.Close()
			return nil, err
		}
		proxy.Instrument(cfg.Metrics)
		proxy.TraceWith(c.tracer)
		c.accessor, c.builder, c.lblProxy = proxy, proxy, proxy
	case ProtocolTEE:
		teeClient, err := core.NewTEEClient(core.TEEConfig{ValueSize: cfg.ValueSize}, f, cfg.Keys.DataKey, rpc)
		if err != nil {
			rpc.Close()
			return nil, err
		}
		teeClient.Instrument(cfg.Metrics)
		c.accessor, c.builder, c.teeClient = teeClient, teeClient, teeClient
	case ProtocolFHE:
		params, err := cfg.FHE.params()
		if err != nil {
			rpc.Close()
			return nil, err
		}
		var sk *fhe.SecretKey
		if len(cfg.Keys.FHESecretKey) > 0 {
			sk, err = params.UnmarshalSecretKey(cfg.Keys.FHESecretKey)
		} else {
			sk, err = params.KeyGen()
		}
		if err != nil {
			rpc.Close()
			return nil, err
		}
		fheClient, err := core.NewFHEClientWithKey(core.FHEConfig{
			Params: params, ValueSize: cfg.ValueSize, RelinBaseBits: cfg.FHE.RelinBaseBits,
		}, f, sk, rpc)
		if err != nil {
			rpc.Close()
			return nil, err
		}
		if cfg.FHE.RelinBaseBits > 0 {
			if err := fheClient.ProvisionRelinKey(); err != nil {
				rpc.Close()
				return nil, fmt.Errorf("ortoa: provisioning relinearization key: %w", err)
			}
		}
		fheClient.Instrument(cfg.Metrics)
		c.accessor, c.builder = fheClient, fheClient
		c.fheSecret = sk.Marshal()
	case ProtocolBaseline2RTT:
		proxy, err := core.NewBaselineProxy(core.BaselineConfig{ValueSize: cfg.ValueSize}, f, cfg.Keys.DataKey, rpc)
		if err != nil {
			rpc.Close()
			return nil, err
		}
		c.accessor, c.builder = proxy, proxy
	default:
		rpc.Close()
		return nil, fmt.Errorf("ortoa: unknown protocol %q", cfg.Protocol)
	}
	return c, nil
}

// FHESecretKey returns the serialized BFV secret key in use
// (ProtocolFHE only), so it can be stored in Keys for later sessions.
func (c *Client) FHESecretKey() []byte { return c.fheSecret }

// Provision attests the server's enclave and provisions the data key
// (ProtocolTEE only). Call once before accesses.
func (c *Client) Provision() error {
	if c.teeClient == nil {
		return fmt.Errorf("ortoa: Provision applies only to ProtocolTEE")
	}
	return c.teeClient.AttestAndProvisionRemote()
}

// Load encodes initial records and bulk-loads them into the server —
// the Init procedure of Figure 1. Values shorter than ValueSize are
// zero-padded.
func (c *Client) Load(data map[string][]byte) error {
	records := make([]core.KV, 0, len(data))
	for k, v := range data {
		padded, err := core.PadValue(v, c.valueSize)
		if err != nil {
			return fmt.Errorf("ortoa: value for %q: %w", k, err)
		}
		ek, rec, err := c.builder.BuildRecord(k, padded)
		if err != nil {
			return fmt.Errorf("ortoa: encoding %q: %w", k, err)
		}
		records = append(records, core.KV{Key: ek, Record: rec})
	}
	if err := core.BulkLoad(c.rpc, records); err != nil {
		return err
	}
	keys := make([]string, 0, len(data))
	for k := range data {
		keys = append(keys, k)
	}
	c.addToDirectory(keys)
	return nil
}

func (c *Client) addToDirectory(keys []string) {
	c.dirMu.Lock()
	defer c.dirMu.Unlock()
	merged := append(c.directory, keys...)
	sort.Strings(merged)
	// Deduplicate in place.
	out := merged[:0]
	for i, k := range merged {
		if i == 0 || merged[i-1] != k {
			out = append(out, k)
		}
	}
	c.directory = out
}

// Keys returns the loaded keys in sorted order.
func (c *Client) Keys() []string {
	c.dirMu.RLock()
	defer c.dirMu.RUnlock()
	return append([]string(nil), c.directory...)
}

// Read obliviously fetches the value stored under key. The server
// cannot distinguish this from a Write.
func (c *Client) Read(key string) ([]byte, error) {
	v, _, err := c.accessor.Access(core.OpRead, key, nil)
	return v, err
}

// Write obliviously replaces the value stored under key, zero-padding
// to the store's fixed value size. The server cannot distinguish this
// from a Read.
func (c *Client) Write(key string, value []byte) error {
	padded, err := core.PadValue(value, c.valueSize)
	if err != nil {
		return err
	}
	_, _, err = c.accessor.Access(core.OpWrite, key, padded)
	return err
}

// ValueSize returns the store's fixed value length.
func (c *Client) ValueSize() int { return c.valueSize }

// TrafficStats reports cumulative proxy→server traffic: the
// communication quantities §5.3.2 and §6.3.3 analyze.
func (c *Client) TrafficStats() (bytesSent, bytesReceived, calls int64) {
	st := c.rpc.Stats()
	return st.BytesSent, st.BytesReceived, st.Calls
}

// batchParallelism bounds concurrent requests issued by the
// concurrent-fallback batch and range helpers.
const batchParallelism = 16

// A KVPair is one key/value result of a batch or range read.
type KVPair struct {
	Key   string
	Value []byte
}

// ReadBatch obliviously reads many keys and returns the values in
// input order. Under ProtocolLBL the whole batch is packed into a
// single MsgLBLAccessBatch round trip — one frame out, one frame back —
// amortizing the per-access framing and round-trip overhead (§5.2,
// §6.3); the adversary learns only how many objects were accessed,
// exactly as with the equivalent sequence of single accesses. Other
// protocols fall back to pipelining concurrent single accesses over the
// connection pool.
func (c *Client) ReadBatch(keys []string) ([]KVPair, error) {
	if c.lblProxy != nil {
		ops := make([]core.BatchOp, len(keys))
		for i, key := range keys {
			ops[i] = core.BatchOp{Op: core.OpRead, Key: key}
		}
		values, _, err := c.lblProxy.AccessBatch(ops)
		if err != nil {
			return nil, fmt.Errorf("ortoa: batch read: %w", err)
		}
		out := make([]KVPair, len(keys))
		for i, key := range keys {
			out[i] = KVPair{Key: key, Value: values[i]}
		}
		return out, nil
	}
	return c.readBatchConcurrent(keys)
}

// readBatchConcurrent is the pre-batch-RPC path: one RPC per key,
// pipelined over the connection pool. It remains for the protocols
// without a batch handler and as the baseline the batch benchmarks
// compare against.
func (c *Client) readBatchConcurrent(keys []string) ([]KVPair, error) {
	out := make([]KVPair, len(keys))
	var wg sync.WaitGroup
	errc := make(chan error, 1)
	sem := make(chan struct{}, batchParallelism)
	for i, key := range keys {
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			v, err := c.Read(key)
			if err != nil {
				select {
				case errc <- fmt.Errorf("ortoa: batch read %q: %w", key, err):
				default:
				}
				return
			}
			out[i] = KVPair{Key: key, Value: v}
		}(i, key)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
		return out, nil
	}
}

// WriteBatch obliviously writes many entries. Under ProtocolLBL the
// batch is one MsgLBLAccessBatch round trip, indistinguishable at the
// server from a ReadBatch of the same size; other protocols write
// concurrently, one access per entry.
func (c *Client) WriteBatch(entries map[string][]byte) error {
	if c.lblProxy != nil {
		ops := make([]core.BatchOp, 0, len(entries))
		for key, value := range entries {
			padded, err := core.PadValue(value, c.valueSize)
			if err != nil {
				return fmt.Errorf("ortoa: value for %q: %w", key, err)
			}
			ops = append(ops, core.BatchOp{Op: core.OpWrite, Key: key, Value: padded})
		}
		if _, _, err := c.lblProxy.AccessBatch(ops); err != nil {
			return fmt.Errorf("ortoa: batch write: %w", err)
		}
		return nil
	}
	var wg sync.WaitGroup
	errc := make(chan error, 1)
	sem := make(chan struct{}, batchParallelism)
	for key, value := range entries {
		wg.Add(1)
		go func(key string, value []byte) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := c.Write(key, value); err != nil {
				select {
				case errc <- fmt.Errorf("ortoa: batch write %q: %w", key, err):
				default:
				}
			}
		}(key, value)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// ReadRange reads up to limit consecutive keys starting at start
// (inclusive), in primary-key order — the §8.2 direction: range
// queries layered over single-object oblivious accesses using the
// trusted side's key directory. It rides ReadBatch, so under
// ProtocolLBL the whole range costs one round trip. The accesses
// themselves remain individually oblivious; the adversary learns only
// that `limit` objects were accessed, as with any multi-get.
func (c *Client) ReadRange(start string, limit int) ([]KVPair, error) {
	if limit <= 0 {
		return nil, nil
	}
	return c.ReadBatch(c.rangeKeys(start, limit))
}

// rangeKeys returns up to limit directory keys at or after start, in
// sorted order — the directory walk ReadRange (and the sharded
// merge) rides on.
func (c *Client) rangeKeys(start string, limit int) []string {
	c.dirMu.RLock()
	defer c.dirMu.RUnlock()
	idx := sort.SearchStrings(c.directory, start)
	end := idx + limit
	if end > len(c.directory) {
		end = len(c.directory)
	}
	return append([]string(nil), c.directory[idx:end]...)
}

// SaveState persists trusted-side protocol state that cannot be
// regenerated from the keys: the LBL access counters (§5.3.1). The
// write is crash-atomic (temp file, fsync, rename, directory fsync):
// a crash mid-save leaves the previous snapshot intact, never a torn
// one. For the stateless protocols SaveState is a no-op, so callers
// can save unconditionally. Counters saved mid-traffic may trail the
// server by the in-flight window; a client resuming from such a
// snapshot needs ClientConfig.ReconcileScan to close the gap.
// Concurrent SaveState calls (for example a periodic saver racing a
// shutdown save) serialize internally.
func (c *Client) SaveState(path string) error {
	if c.lblProxy == nil {
		return nil
	}
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	return vfs.WriteFileAtomic(vfs.OS{}, path, c.lblProxy.SaveCounters)
}

// LoadState restores a SaveState file. Call before issuing accesses
// when resuming an LBL deployment against an existing server store.
func (c *Client) LoadState(path string) error {
	if c.lblProxy == nil {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.lblProxy.LoadCounters(f)
}

// ClaimRanges asserts ownership of explicit counter ranges (LBL
// multi-proxy deployments): the server bumps each range to a fresh
// epoch, fencing every in-flight or retried round from the previous
// owner before it can touch a record. Range ids live in
// [0, NumCounterRanges). Returns an error for non-LBL protocols.
func (c *Client) ClaimRanges(rangeIDs []uint32) error {
	if c.lblProxy == nil {
		return fmt.Errorf("ortoa: range ownership requires ProtocolLBL")
	}
	return c.lblProxy.ClaimRanges(rangeIDs)
}

// ClaimOwnedRanges claims the counter ranges the deployment's
// consistent-hash ring assigns to this proxy: peers is the full list
// of proxy names (every member must use the identical list, in any
// order) and self is this proxy's name within it. Returns the range
// ids claimed. This is the startup handshake of a multi-proxy
// deployment; the routing side is DialProxyGroup, whose member names
// must match peers for first-try routing to land on owners.
func (c *Client) ClaimOwnedRanges(peers []string, self string) ([]uint32, error) {
	if c.lblProxy == nil {
		return nil, fmt.Errorf("ortoa: range ownership requires ProtocolLBL")
	}
	found := false
	for _, p := range peers {
		if p == self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("ortoa: self %q is not in the peer list %v", self, peers)
	}
	rids := core.NewRing(peers).Ranges(self)
	if err := c.lblProxy.ClaimRanges(rids); err != nil {
		return nil, err
	}
	return rids, nil
}

// NumCounterRanges is the fixed size of the counter-range space that
// multi-proxy deployments partition ownership over (core range ids are
// [0, NumCounterRanges)).
const NumCounterRanges = core.NumRanges

// ServeProxy exposes this trusted client as a network proxy: end
// users connect to l and route oblivious accesses through it (the
// deployment model of §2.1). It blocks until Close, which stops the
// listener and drains accepted end-user connections.
func (c *Client) ServeProxy(l net.Listener) error {
	return c.ServeProxyOptions(l, ProxyServeOptions{})
}

// ProxyServeOptions tunes a proxy front end started with
// ServeProxyOptions. The zero value proxies each end-user request as
// its own access round trip.
type ProxyServeOptions struct {
	// AggWindow, when positive, turns on cross-session access
	// aggregation (ProtocolLBL only): concurrent end-user requests are
	// coalesced into shared MsgLBLAccessBatch round trips. A window
	// dispatches at most AggWindow after its first access arrives —
	// the latency each access may pay to buy the amortization.
	AggWindow time.Duration
	// AggMaxBatch dispatches a window early once it holds this many
	// accesses (default core DefaultAggMaxBatch, 64).
	AggMaxBatch int
	// AggMaxPending bounds admitted-but-unanswered accesses; arrivals
	// beyond it are rejected with an overload error instead of
	// queueing unboundedly (default 4×AggMaxBatch).
	AggMaxPending int
	// AggBrownoutPending is the pending depth at which the aggregator
	// browns out: new windows open with a larger size trigger
	// (AggBrownoutMaxBatch) and a quarter-length time window, trading
	// per-access coalescing latency for backlog drain rate (default
	// AggMaxPending/2).
	AggBrownoutPending int
	// AggBrownoutMaxBatch is the size trigger for windows opened under
	// brownout (default 2×AggMaxBatch).
	AggBrownoutMaxBatch int
	// Admission, when MaxInflight is positive, bounds the front end's
	// concurrent end-user requests and sheds overload with
	// constant-size busy rejections (see AdmissionOptions).
	Admission AdmissionOptions
}

// ServeProxyOptions is ServeProxy with explicit front-end options.
// It blocks until Close.
func (c *Client) ServeProxyOptions(l net.Listener, opts ProxyServeOptions) error {
	accessor := c.accessor
	var agg *core.Aggregator
	if opts.AggWindow > 0 {
		if c.lblProxy == nil {
			return fmt.Errorf("ortoa: access aggregation requires ProtocolLBL")
		}
		agg = core.NewAggregator(core.AggregatorConfig{
			Window:           opts.AggWindow,
			MaxBatch:         opts.AggMaxBatch,
			MaxPending:       opts.AggMaxPending,
			BrownoutPending:  opts.AggBrownoutPending,
			BrownoutMaxBatch: opts.AggBrownoutMaxBatch,
		}, c.lblProxy)
		agg.Instrument(c.metrics)
		agg.TraceWith(c.tracer)
		accessor = agg
	}
	ts := transport.NewServer()
	ts.Instrument(c.metrics)
	ts.AuditShape(c.shapeAud, core.ShapeClassify)
	if c.tracer != nil {
		ts.SetTracer(c.tracer)
	}
	ts.LimitAdmission(opts.Admission.config())
	core.RegisterProxyService(ts, accessor)
	c.proxyMu.Lock()
	if c.proxyClosed {
		c.proxyMu.Unlock()
		if agg != nil {
			agg.Close()
		}
		return transport.ErrClosed
	}
	c.proxySrvs = append(c.proxySrvs, ts)
	if agg != nil {
		c.proxyAggs = append(c.proxyAggs, agg)
	}
	c.proxyMu.Unlock()
	return ts.Serve(l)
}

// Close shuts the client down gracefully: proxy front ends started
// with ServeProxy stop accepting, accepted end-user connections drain
// (their in-flight accesses complete and are answered), aggregation
// windows flush, and only then are the connections to the server
// released. Close is idempotent and safe to call concurrently with
// serving.
func (c *Client) Close() error {
	c.proxyMu.Lock()
	srvs, aggs := c.proxySrvs, c.proxyAggs
	c.proxySrvs, c.proxyAggs = nil, nil
	c.proxyClosed = true
	c.proxyMu.Unlock()
	for _, ts := range srvs {
		ts.Close()
	}
	for _, agg := range aggs {
		agg.Close()
	}
	return c.rpc.Close()
}

// A ProxyClient is an end-user handle that routes requests through a
// trusted proxy started with ServeProxy. It holds no secrets.
type ProxyClient struct {
	remote *core.RemoteAccessor
	rpc    *transport.Client
}

// ProxyOptions tunes a ProxyClient's fault tolerance; the zero value
// means no per-call deadline and no retries.
type ProxyOptions struct {
	// CallTimeout bounds each request attempt to the proxy; zero means
	// no deadline.
	CallTimeout time.Duration
	// RetryAttempts is the total number of attempts per request,
	// including the first; values below 2 disable retries. Retries are
	// at-most-once (see ClientConfig.RetryAttempts).
	RetryAttempts int
}

// DialProxy connects to a proxy with no deadline or retries.
func DialProxy(dial func() (net.Conn, error), conns int) (*ProxyClient, error) {
	return DialProxyOptions(dial, conns, ProxyOptions{})
}

// DialProxyOptions connects to a proxy with explicit fault-tolerance
// options.
func DialProxyOptions(dial func() (net.Conn, error), conns int, opts ProxyOptions) (*ProxyClient, error) {
	if conns <= 0 {
		conns = 2
	}
	rpc, err := transport.DialOptions(dial, transport.Options{
		PoolSize:    conns,
		CallTimeout: opts.CallTimeout,
		Retry:       transport.RetryPolicy{Attempts: opts.RetryAttempts},
	})
	if err != nil {
		return nil, err
	}
	return &ProxyClient{remote: core.NewRemoteAccessor(rpc), rpc: rpc}, nil
}

// Read fetches the value stored under key via the proxy.
func (p *ProxyClient) Read(key string) ([]byte, error) {
	v, _, err := p.remote.Access(core.OpRead, key, nil)
	return v, err
}

// Write replaces the value stored under key via the proxy. The value
// must already match the store's fixed size (the proxy rejects
// mismatches).
func (p *ProxyClient) Write(key string, value []byte) error {
	_, _, err := p.remote.Access(core.OpWrite, key, value)
	return err
}

// Close releases the proxy connections.
func (p *ProxyClient) Close() error { return p.rpc.Close() }
