package ortoa_test

import (
	"fmt"
	"log"
	"net"
	"time"

	"ortoa"
	"ortoa/internal/netsim"
)

// Example shows the minimal ORTOA deployment: an untrusted server, a
// trusted client, one oblivious read and one oblivious write.
func Example() {
	server, err := ortoa.NewServer(ortoa.ServerConfig{
		Protocol:  ortoa.ProtocolLBL,
		ValueSize: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	link := netsim.Listen(netsim.Loopback)
	go server.Serve(link)

	client, err := ortoa.NewClient(ortoa.ClientConfig{
		Protocol:  ortoa.ProtocolLBL,
		ValueSize: 16,
		Keys:      ortoa.GenerateKeys(),
	}, func() (net.Conn, error) { return link.Dial() })
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if err := client.Load(map[string][]byte{"greeting": []byte("hello")}); err != nil {
		log.Fatal(err)
	}
	v, err := client.Read("greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", v[:5])
	if err := client.Write("greeting", []byte("goodbye")); err != nil {
		log.Fatal(err)
	}
	v, _ = client.Read("greeting")
	fmt.Printf("%s\n", v[:7])
	// Output:
	// hello
	// goodbye
}

// ExampleRecommend applies the paper's §6.3.2 rule to two deployments.
func ExampleRecommend() {
	// GDPR scenario: EU-resident server, 300-byte records.
	eu, _ := ortoa.Recommend(ortoa.Deployment{
		RTT:       148 * time.Millisecond,
		Bandwidth: 12 << 20,
		ValueSize: 300,
	})
	fmt.Println(eu.Protocol)

	// Nearby server, large media objects.
	near, _ := ortoa.Recommend(ortoa.Deployment{
		RTT:       5 * time.Millisecond,
		Bandwidth: 12 << 20,
		ValueSize: 8192,
	})
	fmt.Println(near.Protocol)
	// Output:
	// lbl
	// 2rtt
}

// ExampleClient_ReadRange reads consecutive primary keys through the
// trusted-side key directory (§8.2 direction).
func ExampleClient_ReadRange() {
	server, _ := ortoa.NewServer(ortoa.ServerConfig{Protocol: ortoa.ProtocolLBL, ValueSize: 8})
	defer server.Close()
	link := netsim.Listen(netsim.Loopback)
	go server.Serve(link)
	client, _ := ortoa.NewClient(ortoa.ClientConfig{
		Protocol: ortoa.ProtocolLBL, ValueSize: 8, Keys: ortoa.GenerateKeys(),
	}, func() (net.Conn, error) { return link.Dial() })
	defer client.Close()

	client.Load(map[string][]byte{
		"user-01": []byte("alice"),
		"user-02": []byte("bob"),
		"user-03": []byte("carol"),
	})
	pairs, _ := client.ReadRange("user-02", 2)
	for _, p := range pairs {
		fmt.Println(p.Key)
	}
	// Output:
	// user-02
	// user-03
}
