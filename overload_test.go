package ortoa

import (
	"errors"
	"testing"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/transport"
)

// TestBusyAndAmbiguousClassification pins the public error taxonomy a
// ProxyGroup caller programs against under overload: a busy shed is a
// definite non-execution (back off and retry; no ambiguity
// resolution), a relayed busy stays busy through the proxy hop's error
// flattening, and every-member-down is definite too.
func TestBusyAndAmbiguousClassification(t *testing.T) {
	cases := []struct {
		name            string
		err             error
		busy, ambiguous bool
	}{
		{"nil", nil, false, false},
		{"direct busy", &transport.BusyError{RetryAfter: 10 * time.Millisecond}, true, false},
		{"relayed busy", &transport.RemoteError{Msg: transport.BusyMsgPrefix + "server shed the round"}, true, false},
		{"relayed ambiguity", &transport.RemoteError{Msg: transport.AmbiguousMsgPrefix + "conn died mid-round"}, false, true},
		{"definite handler error", &transport.RemoteError{Msg: "unknown key"}, false, false},
		{"no proxies reachable", core.ErrNoProxies, false, false},
		{"lost connection", errors.New("transport: send: broken pipe"), false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsBusy(tc.err); got != tc.busy {
				t.Errorf("IsBusy = %v, want %v", got, tc.busy)
			}
			if got := Ambiguous(tc.err); got != tc.ambiguous {
				t.Errorf("Ambiguous = %v, want %v", got, tc.ambiguous)
			}
		})
	}
}
