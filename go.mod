module ortoa

go 1.22
