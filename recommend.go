package ortoa

import (
	"fmt"
	"time"
)

// This file implements the paper's §6.3.2 deployment guidance as code:
// "LBL-ORTOA is a better choice for an application if c > p + o" —
// where c is the cross-datacenter round-trip the extra baseline round
// costs, p is LBL's processing time, and o is its large-message
// communication overhead.

// Deployment describes the environment a protocol choice depends on.
type Deployment struct {
	// RTT is the proxy↔server round-trip time.
	RTT time.Duration
	// Bandwidth is the effective per-connection throughput in
	// bytes/second (0 = unconstrained).
	Bandwidth int64
	// ValueSize is the fixed object size in bytes.
	ValueSize int
	// TEEAvailable reports whether the storage provider offers trusted
	// enclaves the application is willing to rely on (§4.3's hardware
	// and side-channel caveats).
	TEEAvailable bool
	// ProcessingPerKB is LBL's measured compute per KiB of value, for
	// the p term. Zero uses a default calibrated on this
	// implementation (~6 µs/KiB of table, ≈2 ms for 160 B values on a
	// 2 GHz core, matching §6.3.3's 2 ms figure).
	ProcessingPerKB time.Duration
}

// Recommendation is the outcome of the §6.3.2 rule.
type Recommendation struct {
	Protocol Protocol
	// C, P, O are the rule's terms for transparency: one extra round
	// trip, LBL processing, LBL communication overhead.
	C, P, O time.Duration
	Reason  string
}

// Recommend applies the §6.3.2 decision rule to a deployment.
func Recommend(d Deployment) (Recommendation, error) {
	if d.ValueSize <= 0 {
		return Recommendation{}, fmt.Errorf("ortoa: Deployment.ValueSize must be positive")
	}
	if d.TEEAvailable {
		return Recommendation{
			Protocol: ProtocolTEE,
			Reason:   "TEE-ORTOA: flat cost in value size and one round trip (§6.1); use when enclaves are acceptable",
		}, nil
	}
	// Sizes from the LBL point-and-permute configuration: table
	// 2^y·ℓ/y entries of 25 B, response ℓ/y labels of 16 B.
	groups := d.ValueSize * 8 / 2
	requestBytes := groups*4*25 + 64
	responseBytes := groups * 16

	perKB := d.ProcessingPerKB
	if perKB == 0 {
		perKB = 6 * time.Microsecond
	}
	p := time.Duration(float64(requestBytes) / 1024 * float64(perKB))
	var o time.Duration
	if d.Bandwidth > 0 {
		o = time.Duration(float64(requestBytes+responseBytes) / float64(d.Bandwidth) * float64(time.Second))
	}
	c := d.RTT

	rec := Recommendation{C: c, P: p, O: o}
	if c > p+o {
		rec.Protocol = ProtocolLBL
		rec.Reason = fmt.Sprintf("c=%v > p+o=%v: the extra baseline round costs more than LBL's compute and larger messages (§6.3.2)",
			c.Round(time.Millisecond), (p + o).Round(time.Millisecond))
	} else {
		rec.Protocol = ProtocolBaseline2RTT
		rec.Reason = fmt.Sprintf("c=%v ≤ p+o=%v: at this value size and link, two cheap rounds beat one heavy round (§6.3.2, Fig 3b)",
			c.Round(time.Millisecond), (p + o).Round(time.Millisecond))
	}
	return rec, nil
}
