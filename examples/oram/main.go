// ORAM: the paper's §8 future-work sketch, implemented — a
// PathORAM-style tree ORAM whose accesses complete in ONE round trip
// by fusing path reads with stash eviction, ORTOA-style.
//
// Classic tree ORAM hides which object is accessed but needs two
// rounds: read a path, then write it back shuffled. The fused variant
// sends the eviction (stash blocks from previous accesses) along with
// the path request; the server returns the old path and installs the
// new one atomically. The example runs the same workload against both
// and compares round counts, RPCs, and wall-clock time over a WAN
// link — while verifying both return identical data.
//
// Run with: go run ./examples/oram
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/netsim"
	"ortoa/internal/oram"
	"ortoa/internal/transport"
)

const (
	numBlocks = 64
	blockSize = 32
	accesses  = 40
)

func main() {
	fmt.Printf("tree ORAM over a %v-RTT link: %d blocks of %d bytes, %d accesses\n\n",
		netsim.Oregon.RTT, numBlocks, blockSize, accesses)

	results := map[oram.Mode][]byte{}
	for _, mode := range []oram.Mode{oram.TwoRound, oram.OneRound} {
		digest, rpcs, elapsed := run(mode)
		results[mode] = digest
		fmt.Printf("%-10s  %3d RPCs  (%.1f per access)  %v total  %v per access\n",
			mode, rpcs, float64(rpcs)/accesses,
			elapsed.Round(time.Millisecond), (elapsed / accesses).Round(time.Millisecond))
	}

	if !bytes.Equal(results[oram.TwoRound], results[oram.OneRound]) {
		log.Fatal("the two variants returned different data!")
	}
	fmt.Println("\nboth variants returned identical data; the fused protocol")
	fmt.Println("halves the rounds exactly as the §8 sketch predicts")

	demoRecursion()
}

// demoRecursion shows the recursive position map: client state shrinks
// from O(N) to a handful of entries, at one extra single-round access
// per recursion level.
func demoRecursion() {
	fmt.Printf("\nrecursive position map (%d blocks):\n", numBlocks)
	dataCfg := oram.Config{NumBlocks: numBlocks, BlockSize: blockSize}
	chain, err := oram.RecursiveChain(dataCfg, 16, 4)
	if err != nil {
		log.Fatal(err)
	}
	var clients []*oram.Client
	var servers []*oram.Server
	var rpcs []*transport.Client
	for _, cfg := range chain {
		srv, err := oram.NewServer(cfg)
		if err != nil {
			log.Fatal(err)
		}
		ts := transport.NewServer()
		srv.Register(ts)
		link := netsim.Listen(netsim.Loopback)
		go ts.Serve(link)
		defer ts.Close()
		rpc, err := transport.Dial(link.Dial, 1)
		if err != nil {
			log.Fatal(err)
		}
		defer rpc.Close()
		client, err := oram.NewClient(cfg, oram.OneRound, rpc)
		if err != nil {
			log.Fatal(err)
		}
		clients = append(clients, client)
		servers = append(servers, srv)
		rpcs = append(rpcs, rpc)
	}
	rc, err := oram.NewRecursiveClient(clients)
	if err != nil {
		log.Fatal(err)
	}
	values := map[int][]byte{}
	for i := 0; i < numBlocks; i++ {
		values[i] = bytes.Repeat([]byte{byte(i)}, blockSize)
	}
	allBuckets, err := rc.Init(values)
	if err != nil {
		log.Fatal(err)
	}
	for i, buckets := range allBuckets {
		if err := servers[i].Load(buckets); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		got, err := rc.Access(core.OpRead, i, nil)
		if err != nil {
			log.Fatal(err)
		}
		if got[0] != byte(i) {
			log.Fatalf("recursive read %d corrupted", i)
		}
	}
	fmt.Printf("  levels: %d (tree sizes:", rc.Levels())
	for _, cfg := range chain {
		fmt.Printf(" %d", cfg.NumBlocks)
	}
	fmt.Printf(" blocks)\n  client position entries: %d instead of %d — O(N) state moved server-side\n",
		rc.ClientPositionEntries(), numBlocks)
	fmt.Printf("  cost: %d single-round accesses per operation (one per level)\n", rc.Levels())
}

// run executes a deterministic mixed workload and returns a digest of
// everything read, the RPC count, and the wall-clock time.
func run(mode oram.Mode) ([]byte, int64, time.Duration) {
	cfg := oram.Config{NumBlocks: numBlocks, BlockSize: blockSize}
	server, err := oram.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ts := transport.NewServer()
	server.Register(ts)
	link := netsim.Listen(netsim.Oregon)
	go ts.Serve(link)
	defer ts.Close()

	rpc, err := transport.Dial(link.Dial, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer rpc.Close()
	client, err := oram.NewClient(cfg, mode, rpc)
	if err != nil {
		log.Fatal(err)
	}

	// Bootstrap: every block starts as i repeated.
	values := map[int][]byte{}
	for i := 0; i < numBlocks; i++ {
		values[i] = bytes.Repeat([]byte{byte(i)}, blockSize)
	}
	buckets, err := client.BuildInitialBuckets(values)
	if err != nil {
		log.Fatal(err)
	}
	if err := server.Load(buckets); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewPCG(7, 99)) // same workload for both modes
	var digest []byte
	start := time.Now()
	for i := 0; i < accesses; i++ {
		id := int(rng.Uint32()) % numBlocks
		if i%3 == 2 {
			v := bytes.Repeat([]byte{byte(i)}, blockSize)
			if _, err := client.Access(core.OpWrite, id, v); err != nil {
				log.Fatal(err)
			}
			values[id] = v
		} else {
			got, err := client.Access(core.OpRead, id, nil)
			if err != nil {
				log.Fatal(err)
			}
			if !bytes.Equal(got, values[id]) {
				log.Fatalf("%s: block %d corrupted", mode, id)
			}
			digest = append(digest, got[0])
		}
	}
	return digest, rpc.Stats().Calls, time.Since(start)
}
