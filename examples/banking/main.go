// Banking: the paper's motivating scenario (§1) on the SmallBank-like
// dataset of §6.4.
//
// A bank outsources encrypted customer balances. Even encrypted, a
// plain store leaks *when* a customer's balance changes — an adversary
// correlating that with location data learns when and where the
// customer transacted. With TEE-ORTOA every balance view and every
// purchase looks the same to the cloud: one fixed-size message, one
// record replacement.
//
// The example deploys TEE-ORTOA (enclave at the server, §4), runs a
// mixed workload of balance views and purchases, and reports the
// latency/throughput the paper's Fig 4 measures for SmallBank.
//
// Run with: go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"ortoa"
	"ortoa/internal/netsim"
	"ortoa/internal/stats"
	"ortoa/internal/workload"
)

func main() {
	ds := workload.SmallBank(1000) // UUID keys, 50-byte balance records

	server, err := ortoa.NewServer(ortoa.ServerConfig{
		Protocol:  ortoa.ProtocolTEE,
		ValueSize: ds.ValueSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	link := netsim.Listen(netsim.Oregon)
	go server.Serve(link)

	client, err := ortoa.NewClient(ortoa.ClientConfig{
		Protocol:  ortoa.ProtocolTEE,
		ValueSize: ds.ValueSize,
		Keys:      ortoa.GenerateKeys(),
		Conns:     16,
	}, func() (net.Conn, error) { return link.Dial() })
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Remote attestation: verify the enclave runs the expected
	// selector program before trusting it with the data key.
	if err := client.Provision(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("enclave attested; data key provisioned")

	if err := client.Load(ds.Data()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outsourced %d customer records (%d B each)\n", server.Records(), ds.ValueSize)

	// Mixed workload: balance views (reads) and purchases (writes),
	// 16 concurrent tellers, closed loop — the paper's measurement
	// shape (§6).
	const tellers = 16
	const opsPerTeller = 25
	rec := stats.NewRecorder(tellers * opsPerTeller)
	var wg sync.WaitGroup
	start := time.Now()
	for tid := 0; tid < tellers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(tid), 42))
			for i := 0; i < opsPerTeller; i++ {
				customer := ds.Records[rng.IntN(len(ds.Records))].Key
				opStart := time.Now()
				var err error
				if rng.IntN(2) == 0 {
					_, err = client.Read(customer) // balance view
				} else {
					newBalance := fmt.Sprintf("chk=%08d.%02d;sav=%08d.%02d;acct=%010d",
						rng.IntN(100000000), rng.IntN(100),
						rng.IntN(100000000), rng.IntN(100), rng.Uint64()%10000000000)
					err = client.Write(customer, []byte(newBalance)) // purchase
				}
				rec.Add(time.Since(opStart))
				if err != nil {
					log.Fatal(err)
				}
			}
		}(tid)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := tellers * opsPerTeller
	fmt.Printf("\n%d operations (50%% views, 50%% purchases) in %v\n", total, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ops/s\n", stats.Throughput(total, elapsed))
	fmt.Printf("latency:    %v\n", rec.Summarize())
	fmt.Println("\nthe cloud observed one identical-looking access per operation —")
	fmt.Println("it cannot tell which customers transacted and which only checked balances")
}
