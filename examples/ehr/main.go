// EHR: electronic health records under GDPR-style data residency
// (§6.3.2, Fig 3d) with malicious-tamper detection (§5.4).
//
// A hospital keeps patient records on a server that data-residency
// law pins to Europe while its clinicians work from the US west
// coast: every access crosses a 147.7 ms RTT link (Table 2, London).
// On such a link the round count dominates latency, so LBL-ORTOA's
// single round beats the two-round baseline even though it ships
// larger messages — the example measures both.
//
// LBL-ORTOA's label encoding also gives integrity for free: the proxy
// knows which labels can exist, so a tampering server is caught the
// moment it returns bytes it did not obtain by honestly running the
// protocol. The example corrupts the server's persisted store and
// shows the access fail with a tamper error.
//
// Run with: go run ./examples/ehr
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"ortoa"
	"ortoa/internal/netsim"
	"ortoa/internal/workload"
)

func main() {
	ds := workload.EHR(500) // UUID patient keys, 10-byte vitals

	// --- Part 1: one round vs two rounds on an EU-resident server ---
	fmt.Println("part 1: access latency with an EU-resident server (London link)")
	keys := ortoa.GenerateKeys()
	patient := ds.Records[17].Key

	for _, proto := range []ortoa.Protocol{ortoa.ProtocolLBL, ortoa.ProtocolBaseline2RTT} {
		server, err := ortoa.NewServer(ortoa.ServerConfig{Protocol: proto, ValueSize: ds.ValueSize})
		if err != nil {
			log.Fatal(err)
		}
		link := netsim.Listen(netsim.London)
		go server.Serve(link)
		client, err := ortoa.NewClient(ortoa.ClientConfig{
			Protocol: proto, ValueSize: ds.ValueSize, Keys: keys,
		}, func() (net.Conn, error) { return link.Dial() })
		if err != nil {
			log.Fatal(err)
		}
		if err := client.Load(ds.Data()); err != nil {
			log.Fatal(err)
		}
		const ops = 5
		start := time.Now()
		for i := 0; i < ops; i++ {
			if _, err := client.Read(patient); err != nil {
				log.Fatal(err)
			}
		}
		perOp := time.Since(start) / ops
		fmt.Printf("  %-12s %v per access\n", proto, perOp.Round(time.Millisecond))
		client.Close()
		server.Close()
	}

	// --- Part 2: tamper detection (§5.4) ---
	fmt.Println("\npart 2: detecting a tampering server")
	server, err := ortoa.NewServer(ortoa.ServerConfig{Protocol: ortoa.ProtocolLBL, ValueSize: ds.ValueSize})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	link := netsim.Listen(netsim.Loopback)
	go server.Serve(link)
	client, err := ortoa.NewClient(ortoa.ClientConfig{
		Protocol: ortoa.ProtocolLBL, ValueSize: ds.ValueSize, Keys: keys,
	}, func() (net.Conn, error) { return link.Dial() })
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if err := client.Load(ds.Data()); err != nil {
		log.Fatal(err)
	}
	v, err := client.Read(patient)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  honest server: patient %s… -> %q\n", patient[:8], v)

	// The "adversary" flips bits in the server's persisted state —
	// e.g. a malicious cloud operator editing the disk image.
	dir, err := os.MkdirTemp("", "ortoa-ehr")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "store.snap")
	if err := server.SaveSnapshot(snap); err != nil {
		log.Fatal(err)
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		log.Fatal(err)
	}
	for i := len(raw) - 64; i < len(raw); i++ {
		raw[i] ^= 0xFF // corrupt the tail: stored label bytes
	}
	if err := os.WriteFile(snap, raw, 0o600); err != nil {
		log.Fatal(err)
	}
	if err := server.LoadSnapshot(snap); err != nil {
		log.Fatal(err)
	}

	// Some record's labels are now forged; scanning reads must catch
	// it — the proxy accepts only labels its PRF could have produced.
	tampered := 0
	for _, r := range ds.Records {
		if _, err := client.Read(r.Key); err != nil {
			tampered++
		}
	}
	if tampered == 0 {
		log.Fatal("corruption went undetected — §5.4 check failed")
	}
	fmt.Printf("  tampering server: corruption detected on %d record(s); data cannot be silently altered\n", tampered)
}
