// Production: the operational features a real ORTOA deployment needs
// beyond the protocol — crash durability, proxy-state persistence, and
// scale-out sharding (§6.2.4).
//
// The example simulates a full lifecycle:
//
//  1. two proxy/server shard pairs are deployed with write-ahead logs,
//  2. a workload runs and LBL counters advance,
//  3. everything is torn down as in a crash (only WALs and the proxy
//     state file survive),
//  4. the deployment is rebuilt from the logs and continues serving
//     with all data intact.
//
// Run with: go run ./examples/production
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"ortoa"
	"ortoa/internal/netsim"
)

const (
	shards    = 2
	valueSize = 32
	records   = 200
)

func main() {
	dir, err := os.MkdirTemp("", "ortoa-production")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	keys := make([]ortoa.Keys, shards)
	for i := range keys {
		keys[i] = ortoa.GenerateKeys()
	}

	// --- Phase 1: deploy, load, serve ---
	fmt.Println("phase 1: deploy 2 shards with WALs, load, serve traffic")
	cluster, servers := deploy(dir, keys)
	data := map[string][]byte{}
	for i := 0; i < records; i++ {
		data[fmt.Sprintf("acct-%04d", i)] = []byte(fmt.Sprintf("balance=%06d", i*10))
	}
	if err := cluster.Load(data); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("acct-%04d", i)
		if i%5 == 0 {
			if err := cluster.Write(key, []byte(fmt.Sprintf("balance=%06d", 999))); err != nil {
				log.Fatal(err)
			}
		} else if _, err := cluster.Read(key); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("  served 50 operations across %d shards\n", cluster.Shards())

	// Persist proxy state, then "crash": close everything without
	// snapshots — only the WALs survive.
	statePrefix := filepath.Join(dir, "proxy-state")
	if err := cluster.SaveState(statePrefix); err != nil {
		log.Fatal(err)
	}
	cluster.Close()
	for _, s := range servers {
		if err := s.DetachWAL(); err != nil {
			log.Fatal(err)
		}
		s.Close()
	}
	fmt.Println("  crash: processes gone; only WALs + proxy state on disk")

	// --- Phase 2: recover from WALs and continue ---
	fmt.Println("phase 2: rebuild from write-ahead logs")
	cluster2, servers2 := deploy(dir, keys)
	defer cluster2.Close()
	for i, s := range servers2 {
		fmt.Printf("  shard %d recovered %d records from WAL\n", i, s.Records())
	}
	if err := cluster2.LoadState(statePrefix); err != nil {
		log.Fatal(err)
	}

	v, err := cluster2.Read("acct-0005") // was overwritten pre-crash
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  acct-0005 after recovery: %q\n", v[:14])
	v, err = cluster2.Read("acct-0001") // untouched
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  acct-0001 after recovery: %q\n", v[:14])
	if err := cluster2.Write("acct-0100", []byte("balance=000042")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  writes accepted post-recovery — deployment fully restored")
	for _, s := range servers2 {
		s.DetachWAL()
	}
}

// deploy builds `shards` proxy/server pairs with WAL-backed stores and
// returns the sharded client plus server handles.
func deploy(dir string, keys []ortoa.Keys) (*ortoa.ShardedClient, []*ortoa.Server) {
	var clients []*ortoa.Client
	var servers []*ortoa.Server
	for i := 0; i < shards; i++ {
		server, err := ortoa.NewServer(ortoa.ServerConfig{
			Protocol:  ortoa.ProtocolLBL,
			ValueSize: valueSize,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := server.AttachWAL(filepath.Join(dir, fmt.Sprintf("shard-%d.wal", i))); err != nil {
			log.Fatal(err)
		}
		link := netsim.Listen(netsim.Oregon)
		go server.Serve(link)
		client, err := ortoa.NewClient(ortoa.ClientConfig{
			Protocol:  ortoa.ProtocolLBL,
			ValueSize: valueSize,
			Keys:      keys[i],
			Conns:     8,
		}, func() (net.Conn, error) { return link.Dial() })
		if err != nil {
			log.Fatal(err)
		}
		clients = append(clients, client)
		servers = append(servers, server)
	}
	sc, err := ortoa.NewShardedClient(clients)
	if err != nil {
		log.Fatal(err)
	}
	return sc, servers
}
