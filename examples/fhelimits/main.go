// FHE limits: why FHE-ORTOA is a design study, not a deployment
// option (§3.3).
//
// FHE-ORTOA evaluates the read/write selector homomorphically, so a
// single round trip suffices with no proxy state and no enclave. The
// catch is RLWE noise: every access multiplies the stored ciphertext,
// and without bootstrapping the noise budget drains in a handful of
// accesses — the paper measured ~10 with SEAL before decryption
// failed, and this example reproduces the same arc with the built-in
// BFV implementation, watching the budget fall access by access.
//
// Run with: go run ./examples/fhelimits
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"

	"ortoa"
	"ortoa/internal/netsim"
)

func main() {
	opts := ortoa.FHEOptions{RingDegree: 128, ModulusBits: 275}
	const valueSize = 32

	server, err := ortoa.NewServer(ortoa.ServerConfig{
		Protocol: ortoa.ProtocolFHE, ValueSize: valueSize, FHE: opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	link := netsim.Listen(netsim.Loopback)
	go server.Serve(link)

	client, err := ortoa.NewClient(ortoa.ClientConfig{
		Protocol: ortoa.ProtocolFHE, ValueSize: valueSize, Keys: ortoa.GenerateKeys(), FHE: opts,
	}, func() (net.Conn, error) { return link.Dial() })
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	secret := []byte("attack at dawn")
	if err := client.Load(map[string][]byte{"order": secret}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %q under FHE; ciphertext expands the record to %d bytes (%.0fx)\n\n",
		secret, server.StorageBytes(), float64(server.StorageBytes())/valueSize)

	fmt.Println("access  result                ciphertext-size")
	for access := 1; access <= 15; access++ {
		got, err := client.Read("order")
		switch {
		case err != nil:
			fmt.Printf("%4d    DECRYPTION FAILED: %v\n", access, err)
			fmt.Println("\nnoise exhausted — exactly the §3.3 failure mode that rules out")
			fmt.Println("FHE-ORTOA in practice until cheaper bootstrapping exists")
			return
		case !bytes.HasPrefix(got, secret):
			fmt.Printf("%4d    GARBAGE %q\n", access, got[:8])
			fmt.Println("\nnoise exceeded the decryption threshold — the stored value is lost,")
			fmt.Println("exactly the §3.3 failure mode that rules out FHE-ORTOA in practice")
			return
		default:
			fmt.Printf("%4d    ok %q    %8dB\n", access, got[:14], server.StorageBytes())
		}
	}
	fmt.Println("\nno failure within 15 accesses — try smaller FHEOptions.ModulusBits")
}
