// Quickstart: a complete in-process ORTOA deployment in ~60 lines.
//
// It starts an untrusted LBL-ORTOA server, connects a trusted client
// over a simulated Oregon WAN link (21.84 ms RTT, Table 2 of the
// paper), loads a few records, and shows that a read and a write are
// indistinguishable to the server: both arrive as one equal-sized
// message and both replace the stored record.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"

	"ortoa"
	"ortoa/internal/netsim"
)

func main() {
	const valueSize = 64

	// Untrusted side: the storage server. It sees only PRF-encoded
	// keys and per-bit secret labels.
	server, err := ortoa.NewServer(ortoa.ServerConfig{
		Protocol:  ortoa.ProtocolLBL,
		ValueSize: valueSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	// A simulated cross-datacenter link (proxy in California, server
	// in Oregon). Swap for net.Listen("tcp", ...) in a real deployment.
	link := netsim.Listen(netsim.Oregon)
	go server.Serve(link)

	// Trusted side: holds the PRF key and per-key access counters.
	client, err := ortoa.NewClient(ortoa.ClientConfig{
		Protocol:  ortoa.ProtocolLBL,
		ValueSize: valueSize,
		Keys:      ortoa.GenerateKeys(),
	}, func() (net.Conn, error) { return link.Dial() })
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Initial outsourcing: encode and bulk-load the database.
	if err := client.Load(map[string][]byte{
		"alice": []byte("balance=1000"),
		"bob":   []byte("balance=2500"),
		"carol": []byte("balance=40"),
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d records, server stores %d bytes of labels\n",
		server.Records(), server.StorageBytes())

	// A read: one round trip; the server re-labels the record.
	before := server.StorageBytes()
	v, err := client.Read("alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read  alice -> %q\n", v[:12])

	// A write: same single round trip, same server-side behaviour.
	if err := client.Write("alice", []byte("balance=900")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write alice <- %q\n", "balance=900")

	v, err = client.Read("alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read  alice -> %q\n", v[:11])
	fmt.Printf("server storage unchanged in size (%d -> %d bytes): reads and writes look identical\n",
		before, server.StorageBytes())
}
